#include "tricount/mpisim/comm.hpp"

#include <algorithm>

#include "tricount/mpisim/runtime.hpp"
#include "tricount/util/time.hpp"

namespace tricount::mpisim {

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) {
  messages_sent += other.messages_sent;
  bytes_sent += other.bytes_sent;
  messages_received += other.messages_received;
  bytes_received += other.bytes_received;
  collective_messages_sent += other.collective_messages_sent;
  collective_bytes_sent += other.collective_bytes_sent;
  collective_messages_received += other.collective_messages_received;
  collective_bytes_received += other.collective_bytes_received;
  comm_cpu_seconds += other.comm_cpu_seconds;
  return *this;
}

PerfCounters PerfCounters::operator-(const PerfCounters& other) const {
  PerfCounters d;
  d.messages_sent = messages_sent - other.messages_sent;
  d.bytes_sent = bytes_sent - other.bytes_sent;
  d.messages_received = messages_received - other.messages_received;
  d.bytes_received = bytes_received - other.bytes_received;
  d.collective_messages_sent =
      collective_messages_sent - other.collective_messages_sent;
  d.collective_bytes_sent = collective_bytes_sent - other.collective_bytes_sent;
  d.collective_messages_received =
      collective_messages_received - other.collective_messages_received;
  d.collective_bytes_received =
      collective_bytes_received - other.collective_bytes_received;
  d.comm_cpu_seconds = comm_cpu_seconds - other.comm_cpu_seconds;
  return d;
}

CommCell& CommCell::operator+=(const CommCell& other) {
  user_messages += other.user_messages;
  user_bytes += other.user_bytes;
  collective_messages += other.collective_messages;
  collective_bytes += other.collective_bytes;
  return *this;
}

CommCell CommMatrix::row_total(int source) const {
  CommCell total;
  for (int d = 0; d < size_; ++d) total += at(source, d);
  return total;
}

CommCell CommMatrix::col_total(int dest) const {
  CommCell total;
  for (int s = 0; s < size_; ++s) total += at(s, dest);
  return total;
}

Comm::Comm(World& world, int rank) : world_(world), rank_(rank) {}

int Comm::size() const { return world_.size(); }

PerfCounters& Comm::counters() { return world_.counters(rank_); }

const PerfCounters& Comm::counters() const { return world_.counters(rank_); }

int Comm::next_collective_tag() {
  // Cycle within the reserved space; 2^30 distinct tags is far more than
  // any run performs, so reuse cannot collide with in-flight traffic.
  const int tag = kReservedTagBase + collective_seq_;
  collective_seq_ = (collective_seq_ + 1) & ((1 << 30) - 1 - kReservedTagBase);
  return tag;
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= size()) {
    throw std::invalid_argument("mpisim: send to invalid rank");
  }
  const double t0 = util::thread_cpu_seconds();
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload.assign(payload.begin(), payload.end());
  world_.mailbox(dest).push(std::move(m));
  PerfCounters& c = counters();
  c.messages_sent += 1;
  c.bytes_sent += payload.size();
  CommCell& cell = world_.comm_matrix().at(rank_, dest);
  if (is_collective_tag(tag)) {
    c.collective_messages_sent += 1;
    c.collective_bytes_sent += payload.size();
    cell.collective_messages += 1;
    cell.collective_bytes += payload.size();
  } else {
    cell.user_messages += 1;
    cell.user_bytes += payload.size();
  }
  c.comm_cpu_seconds += util::thread_cpu_seconds() - t0;
}

Message Comm::recv_message(int source, int tag) {
  const double t0 = util::thread_cpu_seconds();
  Message m = world_.mailbox(rank_).pop(source, tag);
  PerfCounters& c = counters();
  c.messages_received += 1;
  c.bytes_received += m.payload.size();
  if (is_collective_tag(m.tag)) {
    c.collective_messages_received += 1;
    c.collective_bytes_received += m.payload.size();
  }
  c.comm_cpu_seconds += util::thread_cpu_seconds() - t0;
  return m;
}

Message Comm::sendrecv_bytes(int dest, int send_tag,
                             std::span<const std::byte> payload, int source,
                             int recv_tag) {
  send_bytes(dest, send_tag, payload);
  return recv_message(source, recv_tag);
}

bool Comm::iprobe(int source, int tag) {
  return world_.mailbox(rank_).probe(source, tag);
}

}  // namespace tricount::mpisim
