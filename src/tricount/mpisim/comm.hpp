// Comm: a rank's handle onto the simulated communicator.
//
// The API mirrors the subset of MPI the paper's algorithm needs: tagged
// buffered point-to-point transfers, sendrecv, and (in collectives.hpp)
// barrier/bcast/reduce/allreduce/gather/allgather/alltoallv/scan/exscan.
// Sends are buffered (the payload is copied into the destination mailbox
// and the call returns immediately), which corresponds to MPI_Bsend
// semantics and makes shift patterns like Cannon's trivially deadlock-free.
// With a FaultInjector installed on the World (chaos subsystem), the
// buffered fast path is replaced by reliable delivery: every (source,
// dest, tag) channel is sequence-numbered, receivers ack each data copy,
// discard duplicates, and re-order overtaken messages, while senders
// retransmit unacknowledged messages on a timeout — bounded by
// FaultInjector::max_retries(), after which a typed ChaosError is thrown.
// Sends stay non-blocking either way, preserving MPI_Bsend deadlock
// freedom. See docs/chaos.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "tricount/mpisim/mailbox.hpp"
#include "tricount/mpisim/message.hpp"

namespace tricount::mpisim {

class World;
class Comm;

/// Handle for a non-blocking point-to-point operation (isend/irecv).
///
/// Semantics mirror MPI_Request for the subset mpisim needs:
///  - Send requests complete immediately (sends are buffered; the payload
///    is copied before isend_bytes returns), so wait/test on them never
///    block. Completion does NOT imply the receiver has matched it.
///  - Receive requests match lazily at wait()/test() time against the
///    mailbox. Consequence: two outstanding irecvs with the same
///    (source, tag) pattern complete in the order wait/test is called on
///    them, not the order they were posted. Distinct tags (as in the
///    Cannon/SUMMA loops) are unaffected by this deviation.
///  - Wildcards (kAnySource/kAnyTag) are allowed on irecv.
/// Requests are move-only; waiting twice is a no-op (the message is
/// retained and returned again).
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    comm_ = std::exchange(other.comm_, nullptr);
    kind_ = std::exchange(other.kind_, Kind::kNone);
    peer_ = other.peer_;
    tag_ = other.tag_;
    done_ = std::exchange(other.done_, false);
    message_ = std::move(other.message_);
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once the operation has completed (always true for sends).
  bool done() const { return done_; }
  /// True for a default-constructed or moved-from handle.
  bool empty() const { return kind_ == Kind::kNone; }

  /// Attempts completion without blocking; returns done().
  bool test();
  /// Blocks until complete and returns the message (empty for sends).
  Message& wait();

 private:
  friend class Comm;
  enum class Kind { kNone, kSend, kRecv };
  Request(Comm* comm, Kind kind, int peer, int tag, bool done)
      : comm_(comm), kind_(kind), peer_(peer), tag_(tag), done_(done) {}

  Comm* comm_ = nullptr;
  Kind kind_ = Kind::kNone;
  int peer_ = kAnySource;
  int tag_ = kAnyTag;
  bool done_ = false;
  Message message_;
};

/// Blocks until every request in `requests` has completed.
void wait_all(std::span<Request> requests);

class Comm {
 public:
  Comm(World& world, int rank);

  int rank() const { return rank_; }
  int size() const;

  // --- untyped point-to-point -------------------------------------------

  /// Buffered send: copies `payload` to `dest`'s mailbox and returns.
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Blocking receive matching (source, tag); wildcards allowed.
  Message recv_message(int source = kAnySource, int tag = kAnyTag);

  /// Simultaneous send and receive. Because sends are buffered this is
  /// send-then-receive, which matches MPI_Sendrecv's deadlock freedom.
  Message sendrecv_bytes(int dest, int send_tag,
                         std::span<const std::byte> payload, int source,
                         int recv_tag);

  /// Non-blocking probe for a matching message.
  bool iprobe(int source = kAnySource, int tag = kAnyTag);

  // --- non-blocking point-to-point ---------------------------------------

  /// Non-blocking buffered send. The payload is copied before this
  /// returns (MPI_Bsend semantics), so the returned request is already
  /// complete and the caller may immediately reuse or free the buffer.
  Request isend_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Non-blocking receive: returns a request that matches (source, tag)
  /// lazily at wait()/test() time. See the Request class comment for the
  /// same-pattern ordering caveat.
  Request irecv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking counterpart of recv_message: delivers a matching
  /// message if one is available right now. Under a fault injector this
  /// services the reliable channels (acks, dedup, reordering) without
  /// blocking; a delayed (deferred) message only surfaces via a blocking
  /// receive, so test-loops should eventually fall back to wait().
  bool try_recv_message(int source, int tag, Message& out);

  /// Reliable-delivery quiesce: blocks until every send this rank issued
  /// has been acknowledged, retransmitting as needed. Called by run_world
  /// when the rank function returns; a no-op without a fault injector.
  void flush_sends();

  // --- typed convenience wrappers ---------------------------------------

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }

  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send<T>(dest, tag, std::span<const T>(data));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  std::vector<T> recv(int source = kAnySource, int tag = kAnyTag,
                      int* actual_source = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(source, tag);
    if (actual_source != nullptr) *actual_source = m.source;
    return unpack<T>(m.payload);
  }

  template <typename T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    const auto v = recv<T>(source, tag);
    return v.at(0);
  }

  template <typename T>
  std::vector<T> sendrecv(int dest, int send_tag, std::span<const T> data,
                          int source, int recv_tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m =
        sendrecv_bytes(dest, send_tag, std::as_bytes(data), source, recv_tag);
    return unpack<T>(m.payload);
  }

  template <typename T>
  std::vector<T> sendrecv(int dest, int send_tag, const std::vector<T>& data,
                          int source, int recv_tag) {
    return sendrecv<T>(dest, send_tag, std::span<const T>(data), source,
                       recv_tag);
  }

  // --- instrumentation ----------------------------------------------------

  PerfCounters& counters();
  const PerfCounters& counters() const;

  /// Next tag in the reserved collective tag space. Every rank executes
  /// collectives in the same order, so per-rank counters stay aligned.
  int next_collective_tag();

  World& world() { return world_; }

  template <typename T>
  static std::vector<T> unpack(std::span<const std::byte> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload.size() % sizeof(T) != 0) {
      throw std::runtime_error("mpisim: payload size not a multiple of T");
    }
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
    return out;
  }

 private:
  // --- reliable delivery (active only when a FaultInjector is installed)

  /// A sent-but-unacknowledged message, kept for retransmission. The
  /// payload copy is the price of surviving drops.
  struct PendingSend {
    int dest = 0;
    int tag = 0;
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;
    double deadline = 0.0;  // steady-clock seconds of the next retransmit
    int attempts = 0;
    /// Causal-trace identity of the logical message (obs::MsgTrace): the
    /// id every wire attempt shares and the post instant of the original
    /// send call. Zero when no trace is installed.
    std::uint64_t trace_id = 0;
    double post_us = 0.0;
  };

  /// Receiver-side state of one (peer, tag) channel: the next in-order
  /// sequence number and the stash of messages that overtook it.
  struct RecvChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Message> stash;
  };

  void reliable_send(int dest, int tag, std::span<const std::byte> payload);
  Message reliable_recv(int source, int tag);
  /// Non-blocking reliable receive: drains acks/duplicates and returns
  /// false when nothing deliverable is queued right now.
  bool reliable_try_recv(int source, int tag, Message& out);
  /// Puts one attempt of `p` on the wire, applying the injected fault.
  void transmit(const PendingSend& p);
  /// Drains acks and retransmits overdue sends; throws ChaosError once a
  /// message exhausts its retry budget.
  void service_reliable();
  void send_ack(const Message& received);
  /// Delivers the next in-order stashed message matching (source, tag).
  bool take_from_stash(int source, int tag, Message& out);
  /// Tallies one wire attempt into the per-rank counters and the p×p
  /// matrix. Retransmissions still count toward messages_sent/bytes_sent
  /// (the α–β model sees the protocol's real cost) but land in the
  /// matrix's chaos columns instead of the user/collective ones.
  void count_send(int dest, int tag, std::size_t bytes,
                  bool retransmit = false);
  /// Mirrors unacked_.size() into the live-telemetry slot (no-op when no
  /// obs::Telemetry is installed).
  void publish_unacked_depth() const;

  World& world_;
  int rank_;
  int collective_seq_ = 0;
  std::map<std::pair<int, int>, std::uint64_t> send_seq_;
  std::map<std::pair<int, int>, RecvChannel> recv_channels_;
  std::list<PendingSend> unacked_;
};

}  // namespace tricount::mpisim
