#include "tricount/mpisim/collectives.hpp"

namespace tricount::mpisim {

void barrier(Comm& comm) {
  obs::ScopedSpan obs_span("barrier", "collective");
  // Dissemination barrier: in round k each rank signals rank+2^k and waits
  // for rank-2^k (mod p). After ceil(log2 p) rounds every rank transitively
  // depends on every other, so none can exit before all have entered.
  const int p = comm.size();
  const std::byte token{0};
  for (int k = 1; k < p; k <<= 1) {
    const int tag = comm.next_collective_tag();
    const int dest = (comm.rank() + k) % p;
    const int src = (comm.rank() - k % p + p) % p;
    comm.send_bytes(dest, tag, std::span<const std::byte>(&token, 1));
    (void)comm.recv_message(src, tag);
  }
}

}  // namespace tricount::mpisim
