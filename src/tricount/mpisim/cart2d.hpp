// 2D square process-grid topology (the √p × √p grid of the paper).
//
// Rank (x, y) is laid out row-major: rank = x·√p + y, with processor
// P_{x,y} in row x and column y. Neighbour accessors wrap around, which is
// exactly what Cannon's shift pattern needs.
#pragma once

#include "tricount/mpisim/comm.hpp"

namespace tricount::mpisim {

/// Returns the integer square root of p if p is a perfect square, else 0.
int perfect_square_root(int p);

class Cart2D {
 public:
  /// Throws std::invalid_argument if comm.size() is not a perfect square.
  explicit Cart2D(Comm& comm);

  Comm& comm() { return comm_; }
  const Comm& comm() const { return comm_; }

  /// Grid dimension q = √p.
  int q() const { return q_; }
  /// This rank's grid row x and column y.
  int row() const { return row_; }
  int col() const { return col_; }

  int rank_of(int x, int y) const { return x * q_ + y; }

  /// Wraparound neighbours.
  int left() const { return rank_of(row_, (col_ - 1 + q_) % q_); }
  int right() const { return rank_of(row_, (col_ + 1) % q_); }
  int up() const { return rank_of((row_ - 1 + q_) % q_, col_); }
  int down() const { return rank_of((row_ + 1) % q_, col_); }

 private:
  Comm& comm_;
  int q_;
  int row_;
  int col_;
};

}  // namespace tricount::mpisim
