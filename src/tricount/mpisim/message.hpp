// Message, per-rank performance counters, and the (source, dest)
// communication matrix for the mpisim runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tricount::mpisim {

/// Rank identifiers are plain ints, as in MPI.
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for the collective
/// implementations; user point-to-point traffic must stay below it.
constexpr int kReservedTagBase = 1 << 28;

/// True for tags in the reserved collective tag space. Traffic counters
/// use this to attribute bytes to collective-internal vs user messages.
constexpr bool is_collective_tag(int tag) { return tag >= kReservedTagBase; }

/// Envelope class: kData carries application payload and participates in
/// tag matching; kAck is the reliable-delivery control plane (invisible
/// to receives and probes, consumed only by the sender-side protocol in
/// Comm). Chaos-free runs carry kData exclusively.
enum class MsgKind : std::uint8_t { kData = 0, kAck = 1 };

/// An in-flight message: envelope plus owned payload bytes. Payloads are
/// always copied between ranks — ranks never share graph memory, which is
/// what makes this a faithful distributed-memory model.
///
/// `seq` is 0 on chaos-free runs. With a FaultInjector installed, Comm
/// numbers each (source, dest, tag) channel from 1 so the receiver can
/// discard duplicates and re-order overtaken messages; an ack echoes the
/// seq it acknowledges.
struct Message {
  int source = 0;
  int tag = 0;
  MsgKind kind = MsgKind::kData;
  std::uint64_t seq = 0;
  /// Causal trace id (obs::MsgTrace), stamped by the sender at post time
  /// and echoed by acks; 0 when no trace is installed. Joins the
  /// receiver's delivery record to the sender's wire attempts.
  std::uint64_t trace_id = 0;
  std::vector<std::byte> payload;
};

/// Per-rank traffic counters, maintained by every Comm operation. The
/// bench harness converts these to modeled communication time via the
/// α–β cost model (util::AlphaBetaModel).
///
/// messages/bytes_sent/received are totals; the collective_* fields count
/// the subset carried on reserved collective tags, so user traffic is
/// (total - collective). The comm-fraction analyses use the split to
/// attribute bytes to the algorithm vs the collective implementations.
struct PerfCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collective_messages_sent = 0;
  std::uint64_t collective_bytes_sent = 0;
  std::uint64_t collective_messages_received = 0;
  std::uint64_t collective_bytes_received = 0;
  /// Reliability-protocol overhead (chaos runs; all zero otherwise):
  /// retransmitted data attempts and their bytes — a subset of
  /// messages_sent/bytes_sent, which keep counting every wire attempt so
  /// the α–β model sees the protocol's real cost — plus acks, which ride
  /// the control plane and are *not* part of messages_sent.
  std::uint64_t chaos_messages_sent = 0;
  std::uint64_t chaos_bytes_sent = 0;
  std::uint64_t chaos_acks_sent = 0;
  /// CPU seconds this rank spent inside communication calls (packing,
  /// copying, matching). Wait time blocked on a condition variable does
  /// not consume CPU and is deliberately excluded: on an oversubscribed
  /// host, wait time measures the scheduler, not the algorithm.
  double comm_cpu_seconds = 0.0;

  std::uint64_t user_messages_sent() const {
    return messages_sent - collective_messages_sent;
  }
  std::uint64_t user_bytes_sent() const {
    return bytes_sent - collective_bytes_sent;
  }

  PerfCounters& operator+=(const PerfCounters& other);
  PerfCounters operator-(const PerfCounters& other) const;
};

/// One cell of the p×p communication matrix: traffic from one source rank
/// to one destination rank, split by tag class.
struct CommCell {
  std::uint64_t user_messages = 0;
  std::uint64_t user_bytes = 0;
  std::uint64_t collective_messages = 0;
  std::uint64_t collective_bytes = 0;
  /// Reliability overhead on this edge (chaos runs; zero otherwise):
  /// retransmitted data copies plus acks, kept out of the user and
  /// collective columns so protocol cost is visible instead of folded
  /// into the algorithm's traffic. messages()/bytes() exclude it.
  std::uint64_t chaos_messages = 0;
  std::uint64_t chaos_bytes = 0;

  std::uint64_t messages() const { return user_messages + collective_messages; }
  std::uint64_t bytes() const { return user_bytes + collective_bytes; }

  CommCell& operator+=(const CommCell& other);
};

/// Dense p×p matrix of CommCells, recorded at send time inside Comm.
/// Row r is written only by rank r's thread (each rank records its own
/// sends), so recording needs no synchronization; read it after the world
/// has joined.
class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(int size)
      : size_(size),
        cells_(static_cast<std::size_t>(size) * static_cast<std::size_t>(size)) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  CommCell& at(int source, int dest) {
    return cells_[static_cast<std::size_t>(source) *
                      static_cast<std::size_t>(size_) +
                  static_cast<std::size_t>(dest)];
  }
  const CommCell& at(int source, int dest) const {
    return cells_[static_cast<std::size_t>(source) *
                      static_cast<std::size_t>(size_) +
                  static_cast<std::size_t>(dest)];
  }

  /// Everything rank `source` sent (row sum).
  CommCell row_total(int source) const;
  /// Everything delivered to rank `dest` (column sum).
  CommCell col_total(int dest) const;

 private:
  int size_ = 0;
  std::vector<CommCell> cells_;
};

}  // namespace tricount::mpisim
