// Message and per-rank performance counters for the mpisim runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tricount::mpisim {

/// Rank identifiers are plain ints, as in MPI.
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for the collective
/// implementations; user point-to-point traffic must stay below it.
constexpr int kReservedTagBase = 1 << 28;

/// An in-flight message: envelope plus owned payload bytes. Payloads are
/// always copied between ranks — ranks never share graph memory, which is
/// what makes this a faithful distributed-memory model.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-rank traffic counters, maintained by every Comm operation. The
/// bench harness converts these to modeled communication time via the
/// α–β cost model (util::AlphaBetaModel).
struct PerfCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  /// CPU seconds this rank spent inside communication calls (packing,
  /// copying, matching). Wait time blocked on a condition variable does
  /// not consume CPU and is deliberately excluded: on an oversubscribed
  /// host, wait time measures the scheduler, not the algorithm.
  double comm_cpu_seconds = 0.0;

  PerfCounters& operator+=(const PerfCounters& other);
  PerfCounters operator-(const PerfCounters& other) const;
};

}  // namespace tricount::mpisim
