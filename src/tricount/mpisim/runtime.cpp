#include "tricount/mpisim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "tricount/util/log.hpp"

namespace tricount::mpisim {

// ---------------------------------------------------------------------------
// Mailbox

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_locked(int source, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], source, tag)) return i;
  }
  return queue_.size();
}

Message Mailbox::pop(int source, int tag) {
  std::unique_lock lock(mutex_);
  std::size_t at = queue_.size();
  cv_.wait(lock, [&] {
    if (failed_) return true;
    at = find_locked(source, tag);
    return at < queue_.size();
  });
  if (at >= queue_.size()) {
    throw std::runtime_error(
        "mpisim: receive aborted, a peer rank failed while this rank was "
        "blocked");
  }
  Message m = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  return m;
}

bool Mailbox::try_pop(int source, int tag, Message& out) {
  std::scoped_lock lock(mutex_);
  const std::size_t at = find_locked(source, tag);
  if (at >= queue_.size()) return false;
  out = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  return true;
}

bool Mailbox::probe(int source, int tag) {
  std::scoped_lock lock(mutex_);
  return find_locked(source, tag) < queue_.size();
}

void Mailbox::fail() {
  {
    std::scoped_lock lock(mutex_);
    failed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::queued() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// World & run_world

World::World(int size)
    : size_(size),
      counters_(static_cast<size_t>(size)),
      comm_matrix_(std::max(size, 0)) {
  if (size <= 0) throw std::invalid_argument("mpisim: world size must be > 0");
  mailboxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::fail_all() {
  for (auto& mb : mailboxes_) mb->fail();
}

WorldReport run_world_report(int size, const RankFn& fn) {
  World world(size);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_main = [&](int rank) {
    // Tag the thread so log lines and trace events carry the rank. The
    // single-rank inline path reuses the caller's thread, so the previous
    // tag is restored on exit.
    const int previous_rank = util::current_rank();
    util::set_current_rank(rank);
    Comm comm(world, rank);
    try {
      fn(comm);
    } catch (...) {
      {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.fail_all();
    }
    util::set_current_rank(previous_rank);
  };

  if (size == 1) {
    // Single-rank worlds run inline: cheaper, and debugger-friendly.
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(size));
    for (int r = 0; r < size; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return WorldReport{world.all_counters(), std::move(world.comm_matrix())};
}

std::vector<PerfCounters> run_world(int size, const RankFn& fn) {
  return run_world_report(size, fn).counters;
}

}  // namespace tricount::mpisim
