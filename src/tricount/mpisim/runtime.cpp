#include "tricount/mpisim/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "tricount/obs/flight.hpp"
#include "tricount/obs/telemetry.hpp"
#include "tricount/util/log.hpp"

namespace tricount::mpisim {

// ---------------------------------------------------------------------------
// Mailbox

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queued_bytes_ += message.payload.size();
    queue_.push_back(std::move(message));
    // Every arrival ages the deferred messages; release the ones whose
    // hold has expired, preserving their original relative order.
    if (!deferred_.empty()) {
      std::size_t keep = 0;
      for (std::size_t i = 0; i < deferred_.size(); ++i) {
        if (--deferred_[i].remaining <= 0) {
          queued_bytes_ += deferred_[i].message.payload.size();
          queue_.push_back(std::move(deferred_[i].message));
        } else {
          // keep == i would self-move, gutting the held payload.
          if (keep != i) deferred_[keep] = std::move(deferred_[i]);
          ++keep;
        }
      }
      deferred_.resize(keep);
    }
    publish_depth_locked();
  }
  note_progress();
  cv_.notify_all();
}

void Mailbox::push_front(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queued_bytes_ += message.payload.size();
    queue_.push_front(std::move(message));
    publish_depth_locked();
  }
  note_progress();
  cv_.notify_all();
}

void Mailbox::push_deferred(Message message, int hold_pushes) {
  {
    std::scoped_lock lock(mutex_);
    deferred_.push_back(Deferred{std::move(message), std::max(1, hold_pushes)});
  }
  // Deliberately no notify: the message is invisible until released by a
  // later push or by a starving receiver (release_deferred_locked).
}

void Mailbox::release_deferred_locked() {
  for (Deferred& d : deferred_) {
    queued_bytes_ += d.message.payload.size();
    queue_.push_back(std::move(d.message));
  }
  deferred_.clear();
  publish_depth_locked();
}

std::size_t Mailbox::find_locked(int source, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (matches(queue_[i], source, tag)) return i;
  }
  return queue_.size();
}

Message Mailbox::pop(int source, int tag) {
  std::unique_lock lock(mutex_);
  std::size_t at = queue_.size();
  waiting_ = true;
  waiting_source_ = source;
  waiting_tag_ = tag;
  cv_.wait(lock, [&] {
    if (failed_) return true;
    at = find_locked(source, tag);
    if (at < queue_.size()) return true;
    if (!deferred_.empty()) {
      // Nothing deliverable but delayed messages exist: a blocked
      // receiver outwaits any modeled delay rather than deadlocking.
      release_deferred_locked();
      at = find_locked(source, tag);
    }
    return at < queue_.size();
  });
  waiting_ = false;
  if (at >= queue_.size()) {
    throw std::runtime_error(
        "mpisim: receive aborted, a peer rank failed while this rank was "
        "blocked");
  }
  Message m = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  queued_bytes_ -= m.payload.size();
  publish_depth_locked();
  note_progress();
  return m;
}

bool Mailbox::pop_for(int source, int tag, double timeout_seconds,
                      Message& out) {
  std::unique_lock lock(mutex_);
  std::size_t at = queue_.size();
  waiting_ = true;
  waiting_source_ = source;
  waiting_tag_ = tag;
  const bool ready = cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [&] {
        if (failed_) return true;
        at = find_locked(source, tag);
        if (at < queue_.size()) return true;
        if (!deferred_.empty()) {
          release_deferred_locked();
          at = find_locked(source, tag);
        }
        return at < queue_.size();
      });
  waiting_ = false;
  if (failed_ && at >= queue_.size()) {
    throw std::runtime_error(
        "mpisim: receive aborted, a peer rank failed while this rank was "
        "blocked");
  }
  if (!ready || at >= queue_.size()) return false;
  out = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  queued_bytes_ -= out.payload.size();
  publish_depth_locked();
  note_progress();
  return true;
}

bool Mailbox::try_pop(int source, int tag, Message& out) {
  std::scoped_lock lock(mutex_);
  const std::size_t at = find_locked(source, tag);
  if (at >= queue_.size()) return false;
  out = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  queued_bytes_ -= out.payload.size();
  publish_depth_locked();
  note_progress();
  return true;
}

bool Mailbox::try_pop_ack(Message& out) {
  std::scoped_lock lock(mutex_);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].kind == MsgKind::kAck) {
      out = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      queued_bytes_ -= out.payload.size();
      publish_depth_locked();
      note_progress();
      return true;
    }
  }
  return false;
}

bool Mailbox::probe(int source, int tag) {
  std::scoped_lock lock(mutex_);
  return find_locked(source, tag) < queue_.size();
}

void Mailbox::fail() {
  {
    std::scoped_lock lock(mutex_);
    failed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::queued() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

Mailbox::WaitInfo Mailbox::waiting_info() const {
  std::scoped_lock lock(mutex_);
  return WaitInfo{waiting_, waiting_source_, waiting_tag_};
}

// ---------------------------------------------------------------------------
// World & run_world

World::World(int size, const WorldOptions& options)
    : size_(size),
      counters_(static_cast<size_t>(size)),
      chaos_counters_(static_cast<size_t>(size)),
      comm_matrix_(std::max(size, 0)),
      fault_injector_(options.fault_injector) {
  if (size <= 0) throw std::invalid_argument("mpisim: world size must be > 0");
  mailboxes_.reserve(static_cast<size_t>(size));
  obs::Telemetry* telemetry = obs::Telemetry::current();
  if (telemetry != nullptr && telemetry->ranks() < size) {
    telemetry = nullptr;  // sized for a different world; don't misattribute
  }
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(&progress_));
    if (telemetry != nullptr) {
      obs::RankTelemetry& slot = telemetry->rank(i);
      mailboxes_.back()->set_telemetry_gauges(&slot.mailbox_depth,
                                              &slot.mailbox_bytes);
    }
  }
}

void World::fail_all() {
  for (auto& mb : mailboxes_) mb->fail();
}

namespace {

/// Resolves the watchdog budget: explicit option, else environment, else
/// on-by-default (30 s) only when a fault injector can stall the world.
double watchdog_budget(const WorldOptions& options) {
  if (options.watchdog_seconds > 0.0) return options.watchdog_seconds;
  if (options.watchdog_seconds < 0.0) return 0.0;
  if (const char* env = std::getenv("TRICOUNT_WATCHDOG_SECONDS")) {
    const double parsed = std::strtod(env, nullptr);
    return parsed > 0.0 ? parsed : 0.0;
  }
  return options.fault_injector != nullptr ? 30.0 : 0.0;
}

/// One line per rank: what it is blocked on (operation, peer, tag) and how
/// deep its mailbox is — the actionable part of a watchdog failure.
std::string stall_diagnostic(World& world, double budget_seconds) {
  std::ostringstream out;
  out << "mpisim watchdog: no rank made progress for " << budget_seconds
      << " s; per-rank blocked state:";
  for (int r = 0; r < world.size(); ++r) {
    const Mailbox::WaitInfo info = world.mailbox(r).waiting_info();
    out << "\n  rank " << r << ": ";
    if (info.waiting) {
      out << "blocked in recv(source=";
      if (info.source == kAnySource) {
        out << "any";
      } else {
        out << info.source;
      }
      out << ", tag=";
      if (info.tag == kAnyTag) {
        out << "any";
      } else {
        out << info.tag;
      }
      out << ")";
    } else {
      out << "not blocked (computing or exited)";
    }
    out << ", " << world.mailbox(r).queued() << " queued";
  }
  return out.str();
}

}  // namespace

WorldReport run_world_report(int size, const RankFn& fn,
                             const WorldOptions& options) {
  World world(size, options);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_main = [&](int rank) {
    // Tag the thread so log lines and trace events carry the rank. The
    // single-rank inline path reuses the caller's thread, so the previous
    // tag is restored on exit.
    const int previous_rank = util::current_rank();
    util::set_current_rank(rank);
    Comm comm(world, rank);
    try {
      fn(comm);
      // Reliable-delivery quiesce: a rank may not return while peers still
      // wait on its unacknowledged sends. No-op without a fault injector.
      comm.flush_sends();
    } catch (...) {
      {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.fail_all();
    }
    util::set_current_rank(previous_rank);
  };

  const double budget = watchdog_budget(options);
  std::thread watchdog;
  std::mutex wd_mutex;
  std::condition_variable wd_cv;
  bool wd_stop = false;
  // The watchdog only makes sense with real rank threads: the single-rank
  // inline path cannot deadlock on itself without also hanging the caller.
  if (budget > 0.0 && size > 1) {
    watchdog = std::thread([&] {
      // Not a rank: label the thread so its log lines read [wdog] and
      // its (rare) trace/flight events land in the shared world stream.
      util::set_thread_label("wdog");
      using clock = std::chrono::steady_clock;
      const auto interval = std::chrono::duration<double>(
          std::clamp(budget / 4.0, 0.01, 0.5));
      std::uint64_t last_progress = world.progress();
      auto last_change = clock::now();
      std::unique_lock lock(wd_mutex);
      while (!wd_cv.wait_for(lock, interval, [&] { return wd_stop; })) {
        const std::uint64_t now_progress = world.progress();
        if (now_progress != last_progress) {
          last_progress = now_progress;
          last_change = clock::now();
          continue;
        }
        // Only declare a stall when someone is actually blocked; a world
        // that is purely computing is slow, not stuck.
        bool any_waiting = false;
        for (int r = 0; r < size; ++r) {
          any_waiting = any_waiting || world.mailbox(r).waiting_info().waiting;
        }
        const double stalled =
            std::chrono::duration<double>(clock::now() - last_change).count();
        if (!any_waiting || stalled < budget) continue;
        const std::string diag = stall_diagnostic(world, budget);
        TRICOUNT_LOG_ERROR("%s", diag.c_str());
        // Dump the flight rings before tearing the world down: the hang
        // is exactly the case where post-run artifacts never happen.
        if (obs::FlightRecorder* flight = obs::FlightRecorder::current()) {
          flight->instant("watchdog.stall", "chaos", budget);
          flight->try_auto_dump("watchdog-stall");
        }
        {
          std::scoped_lock error_lock(error_mutex);
          if (!first_error) {
            first_error = std::make_exception_ptr(
                ChaosError(ChaosError::Kind::kWatchdogStall, diag));
          }
        }
        world.fail_all();
        return;
      }
    });
  }

  if (size == 1) {
    // Single-rank worlds run inline: cheaper, and debugger-friendly.
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(size));
    for (int r = 0; r < size; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }

  if (watchdog.joinable()) {
    {
      std::scoped_lock lock(wd_mutex);
      wd_stop = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return WorldReport{world.all_counters(), std::move(world.comm_matrix()),
                     world.all_chaos_counters()};
}

std::vector<PerfCounters> run_world(int size, const RankFn& fn,
                                    const WorldOptions& options) {
  return run_world_report(size, fn, options).counters;
}

// ---------------------------------------------------------------------------
// PersistentWorld

PersistentWorld::PersistentWorld(int size, const WorldOptions& options)
    : size_(size) {
  if (options.fault_injector != nullptr) {
    throw std::invalid_argument(
        "mpisim: PersistentWorld does not support fault injection "
        "(Mailbox::fail is permanent, so one chaos crash would poison "
        "every later job)");
  }
  world_ = std::make_unique<World>(size, options);
  if (size_ > 1) {
    threads_.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      threads_.emplace_back(&PersistentWorld::worker, this, r);
    }
  }
}

PersistentWorld::~PersistentWorld() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void PersistentWorld::worker(int rank) {
  // The thread is a rank for its whole lifetime: tag it once so log
  // lines and trace events from every job carry the rank.
  util::set_current_rank(rank);
  std::uint64_t seen = 0;
  while (true) {
    const RankFn* fn = nullptr;
    {
      std::unique_lock lock(mutex_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ > seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_;
    }
    Comm comm(*world_, rank);
    try {
      (*fn)(comm);
      comm.flush_sends();
    } catch (...) {
      {
        std::scoped_lock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      world_->fail_all();
    }
    {
      std::scoped_lock lock(mutex_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

WorldReport PersistentWorld::job_delta(
    const std::vector<PerfCounters>& counters_before,
    const CommMatrix& matrix_before) const {
  WorldReport report;
  report.counters.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    report.counters.push_back(world_->counters(r) -
                              counters_before[static_cast<std::size_t>(r)]);
  }
  report.comm_matrix = CommMatrix(size_);
  // The matrix accumulates across jobs; per-job cells are the increment
  // since the last snapshot. Chaos is unsupported, so only the user and
  // collective columns can have moved — copy all fields for symmetry.
  for (int s = 0; s < size_; ++s) {
    for (int d = 0; d < size_; ++d) {
      const CommCell& now = world_->comm_matrix().at(s, d);
      const CommCell& base = matrix_before.at(s, d);
      CommCell& cell = report.comm_matrix.at(s, d);
      cell.user_messages = now.user_messages - base.user_messages;
      cell.user_bytes = now.user_bytes - base.user_bytes;
      cell.collective_messages =
          now.collective_messages - base.collective_messages;
      cell.collective_bytes = now.collective_bytes - base.collective_bytes;
      cell.chaos_messages = now.chaos_messages - base.chaos_messages;
      cell.chaos_bytes = now.chaos_bytes - base.chaos_bytes;
    }
  }
  report.chaos = world_->all_chaos_counters();  // all zero: no injector
  return report;
}

WorldReport PersistentWorld::run_job(const RankFn& fn) {
  if (poisoned_) {
    throw std::runtime_error(
        "mpisim: persistent world poisoned by an earlier job failure; "
        "rebuild the world before running more jobs");
  }
  const std::vector<PerfCounters> before = world_->all_counters();
  const CommMatrix matrix_before = world_->comm_matrix();

  if (size_ == 1) {
    // Inline, like run_world's single-rank path; restore the caller's tag.
    const int previous_rank = util::current_rank();
    util::set_current_rank(0);
    Comm comm(*world_, 0);
    try {
      fn(comm);
      comm.flush_sends();
    } catch (...) {
      util::set_current_rank(previous_rank);
      poisoned_ = true;
      world_->fail_all();
      throw;
    }
    util::set_current_rank(previous_rank);
  } else {
    {
      std::scoped_lock lock(mutex_);
      job_ = &fn;
      running_ = size_;
      ++generation_;
    }
    job_cv_.notify_all();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return running_ == 0; });
    if (first_error_) {
      poisoned_ = true;
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  ++jobs_run_;
  return job_delta(before, matrix_before);
}

}  // namespace tricount::mpisim
