// A rank's incoming-message queue with MPI-style matching.
//
// Matching honours MPI's non-overtaking rule: among messages that match a
// receive's (source, tag) pattern, the earliest-arriving one is delivered
// first. Wildcards kAnySource / kAnyTag are supported. Only kData
// messages take part in matching; kAck control messages are consumed
// exclusively through try_pop_ack by the reliable-delivery protocol.
//
// The chaos subsystem injects faults through two extra entry points:
// push_front (reordering — the message overtakes everything queued) and
// push_deferred (modeled delay — the message stays invisible until later
// pushes arrive, or until a blocked receiver would otherwise starve, so
// delays can never deadlock a run).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "tricount/mpisim/message.hpp"

namespace tricount::mpisim {

class Mailbox {
 public:
  Mailbox() = default;
  /// `progress` (optional) is bumped on every push and successful pop; the
  /// run_world watchdog watches it to detect a stalled world.
  explicit Mailbox(std::atomic<std::uint64_t>* progress)
      : progress_(progress) {}

  /// Enqueues a message (called by the sender's thread).
  void push(Message message);

  /// Chaos: enqueues at the *front* of the queue, overtaking every message
  /// already waiting — a fabric reordering fault.
  void push_front(Message message);

  /// Chaos: holds the message invisible until `hold_pushes` further pushes
  /// arrive. A receiver that would otherwise block releases all deferred
  /// messages instead of starving, so deferral affects ordering, never
  /// liveness.
  void push_deferred(Message message, int hold_pushes);

  /// Blocks until a message matching (source, tag) is available and
  /// removes it. Throws std::runtime_error if the world is shut down by a
  /// failure while waiting (see fail()).
  Message pop(int source, int tag);

  /// Bounded-wait variant: waits up to `timeout_seconds` for a match.
  /// Returns false on timeout; throws like pop() if the world failed.
  bool pop_for(int source, int tag, double timeout_seconds, Message& out);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_pop(int source, int tag, Message& out);

  /// Non-blocking removal of the oldest kAck message, if any.
  bool try_pop_ack(Message& out);

  /// Returns true if a matching message is queued (MPI_Iprobe analogue).
  bool probe(int source, int tag);

  /// Points the live-telemetry gauges at this mailbox: `depth` receives
  /// the queued-message count and `bytes` the queued payload bytes after
  /// every queue mutation. Same null-tolerant pattern as the watchdog's
  /// `progress` pointer; wired by World when an obs::Telemetry is
  /// installed, zero cost otherwise. The atomics must outlive the world.
  void set_telemetry_gauges(std::atomic<std::uint64_t>* depth,
                            std::atomic<std::uint64_t>* bytes) {
    depth_gauge_ = depth;
    bytes_gauge_ = bytes;
  }

  /// Marks the world as failed and wakes all waiters so a crashing rank
  /// cannot leave its peers blocked forever.
  void fail();

  std::size_t queued() const;

  /// Snapshot of the owning rank's blocked receive, for the watchdog's
  /// stall diagnostic. `source`/`tag` are the match pattern (wildcards
  /// included) of the receive currently blocked in pop/pop_for.
  struct WaitInfo {
    bool waiting = false;
    int source = 0;
    int tag = 0;
  };
  WaitInfo waiting_info() const;

 private:
  static bool matches(const Message& m, int source, int tag) {
    return m.kind == MsgKind::kData &&
           (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Finds the first matching message; returns queue_.size() if none.
  std::size_t find_locked(int source, int tag) const;

  /// Moves every deferred message into the live queue (starvation release).
  void release_deferred_locked();

  void note_progress() {
    if (progress_ != nullptr) {
      progress_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Publishes queue depth/bytes to the telemetry gauges. Call with
  /// mutex_ held, after any queue_ mutation.
  void publish_depth_locked() {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->store(queue_.size(), std::memory_order_relaxed);
    }
    if (bytes_gauge_ != nullptr) {
      bytes_gauge_->store(queued_bytes_, std::memory_order_relaxed);
    }
  }

  struct Deferred {
    Message message;
    int remaining = 0;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::vector<Deferred> deferred_;
  std::uint64_t queued_bytes_ = 0;  ///< payload bytes across queue_
  std::atomic<std::uint64_t>* progress_ = nullptr;
  std::atomic<std::uint64_t>* depth_gauge_ = nullptr;
  std::atomic<std::uint64_t>* bytes_gauge_ = nullptr;
  bool failed_ = false;
  bool waiting_ = false;
  int waiting_source_ = 0;
  int waiting_tag_ = 0;
};

}  // namespace tricount::mpisim
