// A rank's incoming-message queue with MPI-style matching.
//
// Matching honours MPI's non-overtaking rule: among messages that match a
// receive's (source, tag) pattern, the earliest-arriving one is delivered
// first. Wildcards kAnySource / kAnyTag are supported.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "tricount/mpisim/message.hpp"

namespace tricount::mpisim {

class Mailbox {
 public:
  /// Enqueues a message (called by the sender's thread).
  void push(Message message);

  /// Blocks until a message matching (source, tag) is available and
  /// removes it. Throws std::runtime_error if the world is shut down by a
  /// failure while waiting (see fail()).
  Message pop(int source, int tag);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_pop(int source, int tag, Message& out);

  /// Returns true if a matching message is queued (MPI_Iprobe analogue).
  bool probe(int source, int tag);

  /// Marks the world as failed and wakes all waiters so a crashing rank
  /// cannot leave its peers blocked forever.
  void fail();

  std::size_t queued() const;

 private:
  static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Finds the first matching message; returns queue_.size() if none.
  std::size_t find_locked(int source, int tag) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool failed_ = false;
};

}  // namespace tricount::mpisim
