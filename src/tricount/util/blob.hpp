// Blob serialization: pack the arrays of a sparse-matrix-like structure
// into one contiguous byte buffer.
//
// This implements the paper's §5.2 "Reducing overheads associated with
// communication": instead of serializing/deserializing per-array during
// every Cannon shift, a block is stored as a single blob of bytes whose
// interior arrays are "allocated" from the blob. Sending a block is then a
// single untyped message, and receiving it requires no reassembly.
//
// A blob is self-describing: a fixed header records the number of sections
// and each section's element width and length, so a receiver can map the
// arrays back out of the byte buffer in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace tricount::util {

/// Builds a blob. Append sections in a fixed order known to the reader.
class BlobWriter {
 public:
  BlobWriter();

  /// Appends a typed array as the next section. T must be trivially
  /// copyable.
  template <typename T>
  void add_section(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    add_raw_section(data.data(), sizeof(T), data.size());
  }

  template <typename T>
  void add_section(const std::vector<T>& data) {
    add_section(std::span<const T>(data));
  }

  /// Appends a single trivially-copyable value as a one-element section.
  template <typename T>
  void add_scalar(const T& value) {
    add_raw_section(&value, sizeof(T), 1);
  }

  /// Finalizes and returns the blob, leaving the writer empty.
  std::vector<std::byte> take();

  std::size_t section_count() const { return sections_; }

 private:
  void add_raw_section(const void* data, std::size_t elem_size,
                       std::size_t count);

  std::vector<std::byte> body_;
  std::vector<std::uint64_t> directory_;  // (elem_size, count) pairs
  std::size_t sections_ = 0;
};

/// Reads sections back out of a blob in the order they were written.
/// Sections are viewed in place; the blob must outlive the spans.
class BlobReader {
 public:
  explicit BlobReader(std::span<const std::byte> blob);

  /// Views the next section as a typed span. Throws if the element size
  /// does not match what was written or sections are exhausted.
  template <typename T>
  std::span<const T> next_section() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto [ptr, count] = next_raw_section(sizeof(T));
    return {reinterpret_cast<const T*>(ptr), count};
  }

  /// Reads a one-element section written by add_scalar.
  template <typename T>
  T next_scalar() {
    const auto section = next_section<T>();
    if (section.size() != 1) {
      throw std::runtime_error("blob: scalar section has wrong length");
    }
    return section[0];
  }

  std::size_t section_count() const { return sections_; }
  std::size_t sections_remaining() const { return sections_ - cursor_; }

 private:
  std::pair<const std::byte*, std::size_t> next_raw_section(
      std::size_t elem_size);

  std::span<const std::byte> blob_;
  std::size_t sections_ = 0;
  std::size_t cursor_ = 0;
  std::size_t body_offset_ = 0;
};

}  // namespace tricount::util
