// Deterministic pseudo-random number generation.
//
// Every stochastic component in the project (graph generators, property
// tests, workload sweeps) draws from these generators so that runs are
// bit-reproducible given a seed. SplitMix64 is used for seeding/stream
// splitting; Xoshiro256** is the workhorse generator.
#pragma once

#include <cstdint>
#include <limits>

namespace tricount::util {

/// SplitMix64: tiny, statistically solid, and the canonical way to expand
/// one 64-bit seed into many independent stream seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman/Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derives an independent stream seed from a base seed and a stream index
/// (e.g., one stream per MPI rank).
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) {
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm();
  return sm();
}

}  // namespace tricount::util
