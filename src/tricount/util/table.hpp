// Fixed-width ASCII table printer used by the bench harness to emit
// paper-style result tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tricount::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  /// Fixed-point with `decimals` fractional digits.
  Table& cell(double value, int decimals = 2);
  /// A dash, for cells the paper leaves blank (e.g. the baseline row's
  /// speedup column).
  Table& dash();

  /// Renders the table with aligned columns and a separator under the
  /// header row.
  std::string str() const;
  /// Renders and writes to stdout.
  void print() const;

  /// Writes the table as CSV (RFC-4180-style quoting) so the figure data
  /// can be re-plotted. Appends when `append` is set (multi-dataset
  /// benches write one file with a dataset column). Throws on I/O error.
  void write_csv(const std::string& path, bool append = false) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "### title" section heading, matching the style the bench
/// binaries use to delimit reproduced tables/figures.
void print_heading(const std::string& title);

}  // namespace tricount::util
