#include "tricount/util/blob.hpp"

namespace tricount::util {

namespace {
constexpr std::uint64_t kMagic = 0x54434e54424c4f42ULL;  // "TCNTBLOB"
constexpr std::size_t kAlign = 8;

std::size_t aligned(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

BlobWriter::BlobWriter() = default;

void BlobWriter::add_raw_section(const void* data, std::size_t elem_size,
                                 std::size_t count) {
  directory_.push_back(static_cast<std::uint64_t>(elem_size));
  directory_.push_back(static_cast<std::uint64_t>(count));
  const std::size_t bytes = elem_size * count;
  const std::size_t offset = body_.size();
  body_.resize(offset + aligned(bytes));
  if (bytes > 0) std::memcpy(body_.data() + offset, data, bytes);
  ++sections_;
}

std::vector<std::byte> BlobWriter::take() {
  // Layout: magic | section count | directory | body.
  std::vector<std::byte> out;
  const std::size_t header_words = 2 + directory_.size();
  out.resize(header_words * sizeof(std::uint64_t) + body_.size());
  std::uint64_t* header = reinterpret_cast<std::uint64_t*>(out.data());
  header[0] = kMagic;
  header[1] = static_cast<std::uint64_t>(sections_);
  std::memcpy(header + 2, directory_.data(),
              directory_.size() * sizeof(std::uint64_t));
  std::memcpy(out.data() + header_words * sizeof(std::uint64_t), body_.data(),
              body_.size());
  body_.clear();
  directory_.clear();
  sections_ = 0;
  return out;
}

BlobReader::BlobReader(std::span<const std::byte> blob) : blob_(blob) {
  if (blob.size() < 2 * sizeof(std::uint64_t)) {
    throw std::runtime_error("blob: buffer too small for header");
  }
  std::uint64_t magic = 0;
  std::memcpy(&magic, blob.data(), sizeof(magic));
  if (magic != kMagic) throw std::runtime_error("blob: bad magic");
  std::uint64_t sections = 0;
  std::memcpy(&sections, blob.data() + sizeof(std::uint64_t),
              sizeof(sections));
  sections_ = static_cast<std::size_t>(sections);
  body_offset_ = (2 + 2 * sections_) * sizeof(std::uint64_t);
  if (blob.size() < body_offset_) {
    throw std::runtime_error("blob: buffer too small for directory");
  }
}

std::pair<const std::byte*, std::size_t> BlobReader::next_raw_section(
    std::size_t elem_size) {
  if (cursor_ >= sections_) {
    throw std::runtime_error("blob: no sections remaining");
  }
  std::uint64_t stored_elem = 0;
  std::uint64_t count = 0;
  const std::size_t dir_at = (2 + 2 * cursor_) * sizeof(std::uint64_t);
  std::memcpy(&stored_elem, blob_.data() + dir_at, sizeof(stored_elem));
  std::memcpy(&count, blob_.data() + dir_at + sizeof(std::uint64_t),
              sizeof(count));
  if (stored_elem != elem_size) {
    throw std::runtime_error("blob: section element size mismatch");
  }
  const std::size_t bytes = static_cast<std::size_t>(stored_elem * count);
  if (body_offset_ + bytes > blob_.size()) {
    throw std::runtime_error("blob: section extends past buffer");
  }
  const std::byte* ptr = blob_.data() + body_offset_;
  body_offset_ += aligned(bytes);
  ++cursor_;
  return {ptr, static_cast<std::size_t>(count)};
}

}  // namespace tricount::util
