// Minimal command-line parser for the bench/ and examples/ binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` /
// `--no-flag` options. Unknown options are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tricount::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers an option. `help` appears in usage output.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given
  /// or parsing failed; check help_requested() to tell the two apart —
  /// `return args.help_requested() ? 0 : 1;` is the call-site idiom.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. "16,25,36" -> {16, 25, 36}.
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  /// True only on a genuine parse error — --help/-h is not a failure.
  bool parse_failed() const { return failed_; }
  /// True when parse() stopped because --help/-h or --version was given
  /// (both print-and-exit-0 paths).
  bool help_requested() const { return help_requested_; }
  /// True when parse() stopped specifically because of --version (the
  /// build summary has already been printed).
  bool version_requested() const { return version_requested_; }
  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  bool failed_ = false;
  bool help_requested_ = false;
  bool version_requested_ = false;
};

}  // namespace tricount::util
