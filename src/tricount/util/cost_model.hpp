// α–β communication cost model.
//
// The paper's experiments measured wall-clock communication time on a real
// cluster interconnect. This reproduction runs all ranks on one machine, so
// message transfer is a memcpy; to recover a cluster-like communication
// term for the scaling experiments we charge each message the classic
// postal model cost
//
//     T(msg) = alpha + beta * bytes
//
// and compute a phase's modeled communication time from the per-rank
// message/byte counters recorded by mpisim (see PerfCounters). Defaults
// approximate a commodity QDR-InfiniBand-era cluster like the paper's
// (≈1.5 us latency, ≈3.5 GB/s effective point-to-point bandwidth).
#pragma once

#include <cstdint>

namespace tricount::util {

struct AlphaBetaModel {
  double alpha_seconds = 1.5e-6;        ///< per-message latency
  double beta_seconds_per_byte = 1.0 / 3.5e9;  ///< inverse bandwidth

  /// Modeled time for one rank to move `messages` messages totalling
  /// `bytes` bytes.
  double cost(std::uint64_t messages, std::uint64_t bytes) const;

  /// Parses "alpha,beta" (two non-negative doubles, nothing else — a
  /// trailing "junk" suffix is rejected, not ignored). Returns the
  /// default model for a null spec; throws std::invalid_argument on a
  /// malformed one, so a mistyped --model can never silently benchmark
  /// with defaults.
  static AlphaBetaModel from_string(const char* spec);
};

}  // namespace tricount::util
