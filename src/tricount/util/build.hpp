// Build provenance baked in at configure time: git hash, build type,
// compiler, and enabled CMake options. The raw accessors live in util so
// ArgParser can print `--version` without depending on obs; the
// structured/JSON view is obs::build_info() (obs/build_info.hpp).
#pragma once

#include <string>

namespace tricount::util {

/// Project version from CMake (`project(tricount VERSION ...)`).
const char* build_version();
/// Short git hash of the configured checkout, or "unknown" when the
/// source tree was not a git checkout at configure time. Stamped at
/// configure time, so it can go stale until the next CMake re-run.
const char* build_git_hash();
/// CMAKE_BUILD_TYPE (empty under multi-config generators).
const char* build_type();
/// Compiler id + version, e.g. "GNU 13.2.0".
const char* build_compiler();
/// Comma-separated enabled TRICOUNT_* options, or "none".
const char* build_options();

/// One-line human-readable summary for `--version`:
///   "tricount 1.0.0 (abc123def456, RelWithDebInfo, GNU 13.2.0)".
std::string build_summary();

}  // namespace tricount::util
