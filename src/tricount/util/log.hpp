// Leveled logging with printf formatting. Thread-safe: one line per call.
#pragma once

#include <cstdarg>

namespace tricount::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

#define TRICOUNT_LOG_DEBUG(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kDebug, __VA_ARGS__)
#define TRICOUNT_LOG_INFO(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kInfo, __VA_ARGS__)
#define TRICOUNT_LOG_WARN(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kWarn, __VA_ARGS__)
#define TRICOUNT_LOG_ERROR(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kError, __VA_ARGS__)

}  // namespace tricount::util
