// Leveled logging with printf formatting. Thread-safe: one line per call.
//
// Every line carries a monotonic timestamp (seconds since the first log
// call) and the calling thread's simulated rank, so interleaved output
// from a running world can be attributed:
//
//   [   0.001234] [r007] [DEBUG] shift 3 done
//
// The rank is a thread-local set by mpisim::run_world for each rank
// thread ([r---] outside a world). The same thread-local feeds the
// obs::Tracer per-rank buffers.
#pragma once

#include <cstdarg>

namespace tricount::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Sets the minimum level that is emitted. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tags the calling thread with a simulated rank id (negative clears the
/// tag). Set by mpisim::run_world around each rank function.
void set_current_rank(int rank);
/// The calling thread's rank tag, or -1 when unset.
int current_rank();

/// Tags a non-rank helper thread (watchdog, telemetry publisher) with a
/// short label — at most 4 characters are shown — so its log lines read
/// `[wdog]` instead of the anonymous `[r---]`. A rank tag, when set,
/// wins. Pass nullptr to clear. The pointer must stay valid for the
/// thread's lifetime (string literals in practice).
void set_thread_label(const char* label);
/// The calling thread's label, or nullptr when unset.
const char* thread_label();

void log(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

/// True exactly once per process for each distinct `key` (thread-safe) —
/// the building block for emit-once diagnostics.
bool first_occurrence(const char* key);

/// Warns (once per process per flag) that `flag` is deprecated in favor
/// of `replacement`. Returns true when the warning was emitted.
bool warn_deprecated(const char* flag, const char* replacement);

#define TRICOUNT_LOG_TRACE(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kTrace, __VA_ARGS__)
#define TRICOUNT_LOG_DEBUG(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kDebug, __VA_ARGS__)
#define TRICOUNT_LOG_INFO(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kInfo, __VA_ARGS__)
#define TRICOUNT_LOG_WARN(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kWarn, __VA_ARGS__)
#define TRICOUNT_LOG_ERROR(...) \
  ::tricount::util::log(::tricount::util::LogLevel::kError, __VA_ARGS__)

}  // namespace tricount::util
