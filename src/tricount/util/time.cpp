#include "tricount/util/time.hpp"

#include <ctime>

#include <array>
#include <cstdio>

namespace tricount::util {

namespace {
double clock_seconds(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

double wall_seconds() { return clock_seconds(CLOCK_MONOTONIC); }

double thread_cpu_seconds() { return clock_seconds(CLOCK_THREAD_CPUTIME_ID); }

double Stopwatch::now() const {
  return clock_ == Clock::kWall ? wall_seconds() : thread_cpu_seconds();
}

void Stopwatch::start() {
  if (running_) return;
  started_at_ = now();
  running_ = true;
}

double Stopwatch::stop() {
  if (!running_) return 0.0;
  const double interval = now() - started_at_;
  total_ += interval;
  running_ = false;
  return interval;
}

double Stopwatch::seconds() const {
  return running_ ? total_ + (now() - started_at_) : total_;
}

std::string format_seconds(double seconds) {
  std::array<char, 64> buf{};
  if (seconds < 1e-6) {
    std::snprintf(buf.data(), buf.size(), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf.data(), buf.size(), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf.data(), buf.size(), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.3f s", seconds);
  }
  return std::string(buf.data());
}

}  // namespace tricount::util
