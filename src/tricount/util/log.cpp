#include "tricount/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>

#include "tricount/util/time.hpp"

namespace tricount::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;
thread_local int t_rank = -1;
thread_local const char* t_label = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Seconds since the first log line of the process (monotonic clock).
double log_clock_seconds() {
  static const double epoch = wall_seconds();
  return wall_seconds() - epoch;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_current_rank(int rank) { t_rank = rank < 0 ? -1 : rank; }

int current_rank() { return t_rank; }

void set_thread_label(const char* label) { t_label = label; }

const char* thread_label() { return t_label; }

void log(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const double ts = log_clock_seconds();
  std::va_list args;
  va_start(args, format);
  {
    std::scoped_lock lock(g_log_mutex);
    if (t_rank >= 0) {
      std::fprintf(stderr, "[%11.6f] [r%03d] [%s] ", ts, t_rank,
                   level_name(level));
    } else if (t_label != nullptr) {
      std::fprintf(stderr, "[%11.6f] [%-4.4s] [%s] ", ts, t_label,
                   level_name(level));
    } else {
      std::fprintf(stderr, "[%11.6f] [r---] [%s] ", ts, level_name(level));
    }
    std::vfprintf(stderr, format, args);
    std::fputc('\n', stderr);
  }
  va_end(args);
}

bool first_occurrence(const char* key) {
  static std::mutex mutex;
  static std::set<std::string> seen;
  std::scoped_lock lock(mutex);
  return seen.insert(key).second;
}

bool warn_deprecated(const char* flag, const char* replacement) {
  const std::string key = std::string("deprecated:") + flag;
  if (!first_occurrence(key.c_str())) return false;
  TRICOUNT_LOG_WARN("%s is deprecated; use %s instead", flag, replacement);
  return true;
}

}  // namespace tricount::util
