#include "tricount/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tricount::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::va_list args;
  va_start(args, format);
  {
    std::scoped_lock lock(g_log_mutex);
    std::fprintf(stderr, "[%s] ", level_name(level));
    std::vfprintf(stderr, format, args);
    std::fputc('\n', stderr);
  }
  va_end(args);
}

}  // namespace tricount::util
