#include "tricount/util/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tricount::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return cell(std::string(buf.data()));
}

Table& Table::dash() { return cell(std::string("-")); }

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << "  ";
      // Right-align everything; headers too, so columns read as in the
      // paper's tables.
      for (std::size_t pad = v.size(); pad < widths[c]; ++pad) os << ' ';
      os << v;
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "  ";
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

void Table::write_csv(const std::string& path, bool append) const {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      const std::string& v = cells[c];
      if (v.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (const char ch : v) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << v;
      }
    }
    out << '\n';
  };
  if (!append) emit(headers_);
  for (const auto& row : rows_) emit(row);
  if (!out) throw std::runtime_error("Table: write failed for " + path);
}

void print_heading(const std::string& title) {
  std::printf("\n### %s\n\n", title.c_str());
}

}  // namespace tricount::util
