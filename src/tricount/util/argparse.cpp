#include "tricount/util/argparse.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "tricount/util/build.hpp"

namespace tricount::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void ArgParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  options_[name] = Option{default_value ? "1" : "0", help, /*is_flag=*/true};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      help_requested_ = true;
      return false;
    }
    if (arg == "--version") {
      // Treated like --help: parse() returns false with help_requested_
      // set, so the universal `return args.help_requested() ? 0 : 1;`
      // call-site idiom exits 0 without any per-binary change.
      std::printf("%s %s\n", program_.c_str(), build_summary().c_str());
      help_requested_ = true;
      version_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      failed_ = true;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    if (options_.find(arg) == options_.end() && arg.rfind("no-", 0) == 0) {
      const std::string positive = arg.substr(3);
      if (auto it = options_.find(positive);
          it != options_.end() && it->second.is_flag) {
        arg = positive;
        negated = true;
      }
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n%s", program_.c_str(),
                   arg.c_str(), usage().c_str());
      failed_ = true;
      return false;
    }
    if (it->second.is_flag) {
      values_[arg] = negated ? "0" : (has_value ? value : "1");
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: option '--%s' needs a value\n",
                       program_.c_str(), arg.c_str());
          failed_ = true;
          return false;
        }
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::invalid_argument("argparse: option not registered: " + name);
  }
  return it->second.default_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n" << description_ << "\n\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "  (default: " << opt.default_value << ")\n      " << opt.help
       << "\n";
  }
  os << "  --version\n      print version and build provenance\n";
  return os.str();
}

}  // namespace tricount::util
