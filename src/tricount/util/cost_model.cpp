#include "tricount/util/cost_model.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

namespace tricount::util {

double AlphaBetaModel::cost(std::uint64_t messages, std::uint64_t bytes) const {
  return alpha_seconds * static_cast<double>(messages) +
         beta_seconds_per_byte * static_cast<double>(bytes);
}

AlphaBetaModel AlphaBetaModel::from_string(const char* spec) {
  AlphaBetaModel model;
  if (spec == nullptr) return model;
  double alpha = 0.0;
  double beta = 0.0;
  int consumed = 0;
  // %n records how much of the spec the two conversions ate; anything
  // left over ("1e-6,2e-10junk") is a malformed spec, not a valid one.
  if (std::sscanf(spec, " %lf , %lf %n", &alpha, &beta, &consumed) != 2 ||
      spec[consumed] != '\0' || alpha < 0.0 || beta < 0.0) {
    throw std::invalid_argument(
        std::string("cost model: expected \"alpha,beta\" (two non-negative "
                    "seconds values), got \"") +
        spec + "\"");
  }
  model.alpha_seconds = alpha;
  model.beta_seconds_per_byte = beta;
  return model;
}

}  // namespace tricount::util
