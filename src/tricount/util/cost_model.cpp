#include "tricount/util/cost_model.hpp"

#include <cstdio>

namespace tricount::util {

double AlphaBetaModel::cost(std::uint64_t messages, std::uint64_t bytes) const {
  return alpha_seconds * static_cast<double>(messages) +
         beta_seconds_per_byte * static_cast<double>(bytes);
}

AlphaBetaModel AlphaBetaModel::from_string(const char* spec) {
  AlphaBetaModel model;
  if (spec == nullptr) return model;
  double alpha = 0.0;
  double beta = 0.0;
  if (std::sscanf(spec, "%lf,%lf", &alpha, &beta) == 2 && alpha >= 0.0 &&
      beta >= 0.0) {
    model.alpha_seconds = alpha;
    model.beta_seconds_per_byte = beta;
  }
  return model;
}

}  // namespace tricount::util
