// Timing utilities.
//
// Two clocks matter in this project:
//  * Wall clock      -- what a user experiences; meaningless for speedup
//                       measurements when p ranks share one physical core.
//  * Thread CPU time -- CLOCK_THREAD_CPUTIME_ID; charges each rank only for
//                       the cycles it actually executed, so per-rank work
//                       measurements are valid even when the machine is
//                       oversubscribed. All scaling experiments in bench/
//                       are built on this clock (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>

namespace tricount::util {

/// Seconds on the monotonic wall clock.
double wall_seconds();

/// Seconds of CPU time consumed by the *calling thread* only.
double thread_cpu_seconds();

/// A restartable stopwatch accumulating elapsed time across start/stop
/// pairs. The clock source is selected at construction.
class Stopwatch {
 public:
  enum class Clock { kWall, kThreadCpu };

  explicit Stopwatch(Clock clock = Clock::kWall) : clock_(clock) {}

  void start();
  /// Stops the watch and returns the length of the just-finished interval.
  double stop();
  void reset() { total_ = 0.0; running_ = false; }

  /// Accumulated seconds over all completed intervals (plus the live one).
  double seconds() const;
  bool running() const { return running_; }

 private:
  double now() const;

  Clock clock_;
  double total_ = 0.0;
  double started_at_ = 0.0;
  bool running_ = false;
};

/// RAII guard that adds the lifetime of the guard to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

/// Formats a duration as a human-friendly string ("123.4 ms", "1.23 s").
std::string format_seconds(double seconds);

}  // namespace tricount::util
