// Prefix-sum helpers used throughout CSR construction and the distributed
// counting sort.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tricount::util {

/// In-place exclusive prefix sum; returns the total (sum of all inputs).
template <typename T>
T exclusive_prefix_sum(std::span<T> values) {
  T running = 0;
  for (auto& v : values) {
    const T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  return exclusive_prefix_sum(std::span<T>(values));
}

/// In-place inclusive prefix sum; returns the total.
template <typename T>
T inclusive_prefix_sum(std::span<T> values) {
  T running = 0;
  for (auto& v : values) {
    running += v;
    v = running;
  }
  return running;
}

template <typename T>
T inclusive_prefix_sum(std::vector<T>& values) {
  return inclusive_prefix_sum(std::span<T>(values));
}

/// Restores a CSR row-pointer array after it has been used as a cursor:
/// shift entries right by one and set the first to zero.
template <typename T>
void shift_right_fill_zero(std::vector<T>& values) {
  if (values.empty()) return;
  for (std::size_t i = values.size() - 1; i > 0; --i) {
    values[i] = values[i - 1];
  }
  values[0] = 0;
}

}  // namespace tricount::util
