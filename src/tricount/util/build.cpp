#include "tricount/util/build.hpp"

// The definitions are injected by src/CMakeLists.txt; the fallbacks keep
// non-CMake compiles (tooling, IDE indexers) building.
#ifndef TRICOUNT_VERSION
#define TRICOUNT_VERSION "0.0.0"
#endif
#ifndef TRICOUNT_GIT_HASH
#define TRICOUNT_GIT_HASH "unknown"
#endif
#ifndef TRICOUNT_BUILD_TYPE
#define TRICOUNT_BUILD_TYPE ""
#endif
#ifndef TRICOUNT_COMPILER
#define TRICOUNT_COMPILER "unknown"
#endif
#ifndef TRICOUNT_OPTIONS
#define TRICOUNT_OPTIONS "none"
#endif

namespace tricount::util {

const char* build_version() { return TRICOUNT_VERSION; }
const char* build_git_hash() { return TRICOUNT_GIT_HASH; }
const char* build_type() { return TRICOUNT_BUILD_TYPE; }
const char* build_compiler() { return TRICOUNT_COMPILER; }
const char* build_options() { return TRICOUNT_OPTIONS; }

std::string build_summary() {
  std::string out = "tricount ";
  out += build_version();
  out += " (";
  out += build_git_hash();
  if (build_type()[0] != '\0') {
    out += ", ";
    out += build_type();
  }
  out += ", ";
  out += build_compiler();
  out += ", options: ";
  out += build_options();
  out += ")";
  return out;
}

}  // namespace tricount::util
