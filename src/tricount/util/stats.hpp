// Small statistics helpers for the instrumentation and bench harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

namespace tricount::util {

template <typename T>
double mean(std::span<const T> values) {
  if (values.empty()) return 0.0;
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  return total / static_cast<double>(values.size());
}

template <typename T>
T max_value(std::span<const T> values) {
  if (values.empty()) return T{};
  return *std::max_element(values.begin(), values.end());
}

template <typename T>
T min_value(std::span<const T> values) {
  if (values.empty()) return T{};
  return *std::min_element(values.begin(), values.end());
}

/// Load imbalance as defined in the paper's Table 3: max over average.
/// Returns 1.0 for empty or all-zero inputs (perfectly balanced).
template <typename T>
double load_imbalance(std::span<const T> values) {
  const double avg = mean(values);
  if (avg <= 0.0) return 1.0;
  return static_cast<double>(max_value(values)) / avg;
}

template <typename T>
double stddev(std::span<const T> values) {
  if (values.size() < 2) return 0.0;
  const double avg = mean(values);
  double acc = 0.0;
  for (const T& v : values) {
    const double d = static_cast<double>(v) - avg;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

}  // namespace tricount::util
