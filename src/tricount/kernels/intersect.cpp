#include "tricount/kernels/intersect.hpp"

#include <algorithm>
#include <cassert>

namespace tricount::kernels {

void RowBitmap::build(std::span<const VertexId> row) {
  for (const std::uint32_t word : touched_) words_[word] = 0;
  touched_.clear();
  universe_ = row.empty() ? 0 : row.back() + 1;
  const std::size_t needed = (static_cast<std::size_t>(universe_) + 63) / 64;
  if (words_.size() < needed) words_.resize(needed, 0);
  for (const VertexId v : row) {
    const auto word = static_cast<std::uint32_t>(v >> 6);
    if (words_[word] == 0) touched_.push_back(word);
    words_[word] |= std::uint64_t{1} << (v & 63);
  }
}

TriangleCount merge_intersect(std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              KernelCounters& counters) {
  ++counters.merge_calls;
  TriangleCount hits = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++counters.lookups;
    ++counters.merge_steps;
    if (a[i] == b[j]) {
      ++hits;
      ++counters.hits;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return hits;
}

namespace {

/// First index >= `from` with haystack[index] >= x (haystack.size() when
/// none): a doubling jump from `from` brackets x, then binary search.
std::size_t gallop_lower_bound(std::span<const VertexId> haystack,
                               std::size_t from, VertexId x,
                               KernelCounters& counters) {
  const std::size_t n = haystack.size();
  if (from >= n || haystack[from] >= x) return from;
  std::size_t prev = from;  // last index known to hold a value < x
  std::size_t step = 1;
  std::size_t cur = from + step;
  while (cur < n && haystack[cur] < x) {
    ++counters.galloping_steps;
    prev = cur;
    step <<= 1;
    cur = from + step;
  }
  std::size_t lo = prev + 1;
  std::size_t hi = std::min(cur, n);
  while (lo < hi) {
    ++counters.galloping_steps;
    const std::size_t mid = lo + (hi - lo) / 2;
    if (haystack[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

TriangleCount galloping_intersect(std::span<const VertexId> needles,
                                  std::span<const VertexId> haystack,
                                  KernelCounters& counters) {
  ++counters.galloping_calls;
  TriangleCount hits = 0;
  std::size_t at = 0;
  for (const VertexId x : needles) {
    ++counters.lookups;
    at = gallop_lower_bound(haystack, at, x, counters);
    if (at == haystack.size()) break;
    if (haystack[at] == x) {
      ++hits;
      ++counters.hits;
      ++at;
    }
  }
  return hits;
}

TriangleCount bitmap_intersect(const RowBitmap& bitmap,
                               std::span<const VertexId> probe,
                               KernelCounters& counters) {
  ++counters.bitmap_calls;
  TriangleCount hits = 0;
  for (const VertexId v : probe) {
    if (v >= bitmap.universe()) break;  // probe ascending: the rest miss too
    ++counters.lookups;
    ++counters.bitmap_tests;
    if (bitmap.test(v)) {
      ++hits;
      ++counters.hits;
    }
  }
  return hits;
}

TriangleCount hash_intersect(const hashmap::VertexHashSet& set,
                             std::span<const VertexId> probe,
                             VertexId hashed_min, bool backward_early_exit,
                             KernelCounters& counters) {
  ++counters.hash_calls;
  TriangleCount hits = 0;
  if (backward_early_exit) {
    // §5.2: the probe list is ascending and the hash holds nothing below
    // hashed_min, so walk from the largest id and stop at the first id
    // below it — every further lookup would miss.
    for (std::size_t at = probe.size(); at-- > 0;) {
      const VertexId k = probe[at];
      if (k < hashed_min) {
        ++counters.early_exits;
        break;
      }
      ++counters.lookups;
      ++counters.hash_lookups;
      if (set.contains(k)) {
        ++counters.hits;
        ++hits;
      }
    }
  } else {
    for (const VertexId k : probe) {
      ++counters.lookups;
      ++counters.hash_lookups;
      if (set.contains(k)) {
        ++counters.hits;
        ++hits;
      }
    }
  }
  return hits;
}

void IntersectScratch::begin_row(std::span<const VertexId> row,
                                 bool allow_direct) {
  row_ = row;
  allow_direct_ = allow_direct;
  hash_built_ = false;
  bitmap_built_ = false;
  row_density_ = 0.0;
  if (!row.empty()) {
    const double span =
        static_cast<double>(row.back()) - static_cast<double>(row.front()) + 1.0;
    row_density_ = static_cast<double>(row.size()) / span;
  }
}

const hashmap::VertexHashSet& IntersectScratch::hash(KernelCounters& counters) {
  if (!hash_built_) {
    hash_.build(row_, allow_direct_);
    hash_built_ = true;
    ++counters.hash_builds;
    if (hash_.mode() == hashmap::VertexHashSet::Mode::kDirect) {
      ++counters.direct_builds;
    }
#ifndef NDEBUG
    hash_row_data_ = row_.data();
    hash_row_size_ = row_.size();
#endif
  }
  // The scratch is reused across tasks and rows; a hash that was built
  // for a different row than the one currently pinned means begin_row was
  // skipped and stale entries would corrupt the count.
  assert(hash_row_data_ == row_.data() && hash_row_size_ == row_.size());
  return hash_;
}

const RowBitmap& IntersectScratch::bitmap(KernelCounters& counters) {
  if (!bitmap_built_) {
    bitmap_.build(row_);
    bitmap_built_ = true;
    ++counters.bitmap_builds;
#ifndef NDEBUG
    bitmap_row_data_ = row_.data();
    bitmap_row_size_ = row_.size();
#endif
  }
  assert(bitmap_row_data_ == row_.data() && bitmap_row_size_ == row_.size());
  return bitmap_;
}

TriangleCount IntersectScratch::task(KernelPolicy policy,
                                     std::span<const VertexId> probe,
                                     bool backward_early_exit,
                                     KernelCounters& counters) {
  if (row_.empty() || probe.empty()) return 0;
  switch (choose_kernel(policy, row_.size(), probe.size(), row_density_)) {
    case KernelKind::kMerge:
      return merge_intersect(row_, probe, counters);
    case KernelKind::kGalloping:
      return row_.size() <= probe.size()
                 ? galloping_intersect(row_, probe, counters)
                 : galloping_intersect(probe, row_, counters);
    case KernelKind::kBitmap:
      return bitmap_intersect(bitmap(counters), probe, counters);
    case KernelKind::kHash:
      return hash_intersect(hash(counters), probe, row_.front(),
                            backward_early_exit, counters);
  }
  return 0;
}

}  // namespace tricount::kernels
