// Pluggable set-intersection kernels (the compute hot path of §5.1).
//
// The paper ships two intersection strategies: map-based (hash) and
// list-based (sorted merge). The winning strategy depends on the task
// pair, not the run: galloping search beats both on skewed pairs
// (|long| ≫ |short|), and a dense bitset beats hashing once the hashed
// row covers enough of its id span. This module packages all four as
// interchangeable kernels behind one KernelPolicy switch, plus an
// `auto` policy that picks per task pair from the row lengths and the
// hashed row's density. Every kernel produces the exact same count;
// only the operation mix (and therefore the compute time) differs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tricount::kernels {

/// The user-facing kernel switch (`--kernel`). kAuto resolves to one of
/// the four concrete kernels per task pair; the rest force one kernel
/// for every pair.
enum class KernelPolicy { kAuto, kMerge, kGalloping, kBitmap, kHash };

/// The concrete kernel a task pair actually ran (kAuto resolved).
enum class KernelKind { kMerge, kGalloping, kBitmap, kHash };

const char* to_string(KernelPolicy policy);
const char* to_string(KernelKind kind);

/// Parses "auto|merge|galloping|bitmap|hash" into `out`. Returns false
/// (leaving `out` untouched) on any other spelling.
bool parse_policy(std::string_view name, KernelPolicy& out);

/// The kAuto selection thresholds (see docs/kernels.md for the
/// rationale and the measurements behind the constants).
struct AutoThresholds {
  /// Galloping wins when one list is at least this many times longer
  /// than the other: the short side pays O(short · log(long/short))
  /// instead of O(short + long).
  static constexpr std::size_t kGallopingSkew = 32;
  /// Bitmap probing needs the hashed row long enough to amortize the
  /// bitset build...
  static constexpr std::size_t kBitmapMinRow = 64;
  /// ...and dense enough over its id span that the bitset stays small
  /// and cache-resident. Density = row length / (max - min + 1).
  static constexpr double kBitmapMinDensity = 0.125;
};

/// Resolves a policy for one task pair. `hashed_len`/`probe_len` are the
/// two row lengths (hashed = the row a reusable structure is built
/// over); `hashed_density` is that row's length divided by its id span.
/// Both lengths must be non-zero (empty rows never reach a kernel).
KernelKind choose_kernel(KernelPolicy policy, std::size_t hashed_len,
                         std::size_t probe_len, double hashed_density);

/// Counter bundle recorded by the counting kernels on each rank.
///
/// `lookups` stays the universal elementary-operation counter across all
/// kernels (it feeds the Figure 2 operation-rate samples): one merge
/// step, one galloping needle, one bitmap test, or one hash lookup each
/// count as one. The per-kernel call/operation pairs below it attribute
/// that aggregate to the kernel that performed it, so `tricount_perf
/// report` can show the kernel mix of a run.
struct KernelCounters {
  std::uint64_t intersection_tasks = 0;  ///< intersections performed
  std::uint64_t lookups = 0;             ///< elementary ops, all kernels
  std::uint64_t hits = 0;                ///< matches found = triangles
  std::uint64_t probes = 0;              ///< hash probe steps
  std::uint64_t hash_builds = 0;         ///< rows hashed
  std::uint64_t direct_builds = 0;       ///< rows hashed in direct mode
  std::uint64_t rows_visited = 0;        ///< task rows iterated
  std::uint64_t early_exits = 0;         ///< below-minimum traversal breaks

  // Per-kernel attribution: <kernel>_calls counts task pairs routed to
  // the kernel, the second field its elementary operations.
  std::uint64_t merge_calls = 0;
  std::uint64_t merge_steps = 0;      ///< merge loop iterations
  std::uint64_t galloping_calls = 0;
  std::uint64_t galloping_steps = 0;  ///< jump + binary-search comparisons
  std::uint64_t bitmap_calls = 0;
  std::uint64_t bitmap_tests = 0;     ///< bitset membership tests
  std::uint64_t bitmap_builds = 0;    ///< rows materialized as bitsets
  std::uint64_t hash_calls = 0;
  std::uint64_t hash_lookups = 0;     ///< VertexHashSet::contains calls

  KernelCounters& operator+=(const KernelCounters& other);
};

}  // namespace tricount::kernels
