// The four intersection kernels and the per-row scratch state that makes
// them cheap to reuse.
//
// Call shape shared by every counting loop in the repo (2D Cannon, SUMMA,
// serial forward algorithm, 1D baselines): one "hashed" row is fixed and
// probed by many task rows. IntersectScratch::begin_row pins the hashed
// row; IntersectScratch::task then intersects it with one probe row using
// whatever kernel the policy selects, building the hash set or bitset
// lazily on the first task that needs it and reusing it for the rest of
// the row's tasks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tricount/graph/types.hpp"
#include "tricount/hashmap/hash_set.hpp"
#include "tricount/kernels/kernels.hpp"

namespace tricount::kernels {

using graph::TriangleCount;
using graph::VertexId;

/// Dense bitset over one sorted, duplicate-free row. Rebuilding clears
/// exactly the words the previous build set (tracked in a touched-word
/// list), so a reused bitmap can never leak stale bits between rows —
/// the invariant tests/kernels_test.cpp pins down.
class RowBitmap {
 public:
  /// Replaces the contents with `row` (ascending, duplicate-free).
  void build(std::span<const VertexId> row);

  /// Membership test; ids at or above universe() always miss.
  bool test(VertexId v) const {
    const std::size_t word = v >> 6;
    return word < words_.size() && ((words_[word] >> (v & 63)) & 1) != 0;
  }

  /// One past the largest id of the current row (0 when empty).
  VertexId universe() const { return universe_; }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> touched_;
  VertexId universe_ = 0;
};

/// Sorted-merge intersection counting matches between two ascending lists.
TriangleCount merge_intersect(std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              KernelCounters& counters);

/// Galloping (exponential + binary search) intersection: every needle is
/// located in `haystack` with a doubling jump from the previous match
/// position. Both lists ascending; pass the shorter list as `needles`.
TriangleCount galloping_intersect(std::span<const VertexId> needles,
                                  std::span<const VertexId> haystack,
                                  KernelCounters& counters);

/// Probes `probe` (ascending) against a built bitmap; stops at the first
/// id past the bitmap's universe (everything later misses too).
TriangleCount bitmap_intersect(const RowBitmap& bitmap,
                               std::span<const VertexId> probe,
                               KernelCounters& counters);

/// Probes `probe` against a built hash set. With `backward_early_exit`
/// (§5.2) the probe list is walked from the largest id down and the loop
/// breaks at the first id below `hashed_min` — every further lookup
/// would miss.
TriangleCount hash_intersect(const hashmap::VertexHashSet& set,
                             std::span<const VertexId> probe,
                             VertexId hashed_min, bool backward_early_exit,
                             KernelCounters& counters);

/// Reusable per-rank scratch: the hash set and bitmap for the currently
/// pinned hashed row, built lazily per row and cached across that row's
/// tasks. Debug builds assert that a cached structure always belongs to
/// the pinned row, so stale reuse across rows trips immediately.
class IntersectScratch {
 public:
  /// Sizes the hash table for the longest row this scratch will see.
  void reserve_for(std::size_t max_row_len) { hash_.reserve_for(max_row_len); }

  /// Pins `row` as the hashed side for subsequent task() calls and
  /// invalidates any structure built for the previous row. `allow_direct`
  /// is the §5.2 modified-hashing switch, forwarded to the hash build.
  void begin_row(std::span<const VertexId> row, bool allow_direct);

  /// Intersects the pinned row with `probe` using the kernel `policy`
  /// selects for this pair. Returns the number of matches.
  TriangleCount task(KernelPolicy policy, std::span<const VertexId> probe,
                     bool backward_early_exit, KernelCounters& counters);

  std::uint64_t probes() const { return hash_.probes(); }
  void reset_probes() { hash_.reset_probes(); }
  /// Restores a checkpointed probe tally (see VertexHashSet::set_probes).
  void set_probes(std::uint64_t probes) { hash_.set_probes(probes); }

  /// Current hash-table capacity, for superstep checkpoints.
  std::size_t hash_capacity() const { return hash_.capacity(); }
  /// Crash-recovery rollback: restores the checkpointed capacity and
  /// probe tally together so a replayed superstep reproduces the kernel
  /// tallies of the execution it discards (capacity gates both collision
  /// rates and the direct-mode threshold). Drops any built row state.
  void restore(std::size_t hash_capacity, std::uint64_t probes) {
    hash_.restore_capacity(hash_capacity);
    hash_.set_probes(probes);
    hash_built_ = false;
    bitmap_built_ = false;
  }

 private:
  const hashmap::VertexHashSet& hash(KernelCounters& counters);
  const RowBitmap& bitmap(KernelCounters& counters);

  hashmap::VertexHashSet hash_;
  RowBitmap bitmap_;
  std::span<const VertexId> row_;
  double row_density_ = 0.0;
  bool allow_direct_ = true;
  bool hash_built_ = false;
  bool bitmap_built_ = false;
#ifndef NDEBUG
  /// Identity of the row each cached structure was built from; the
  /// cleared-between-rows assertion compares against the pinned row.
  const VertexId* hash_row_data_ = nullptr;
  std::size_t hash_row_size_ = 0;
  const VertexId* bitmap_row_data_ = nullptr;
  std::size_t bitmap_row_size_ = 0;
#endif
};

}  // namespace tricount::kernels
