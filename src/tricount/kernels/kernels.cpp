#include "tricount/kernels/kernels.hpp"

#include <algorithm>

namespace tricount::kernels {

const char* to_string(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kAuto: return "auto";
    case KernelPolicy::kMerge: return "merge";
    case KernelPolicy::kGalloping: return "galloping";
    case KernelPolicy::kBitmap: return "bitmap";
    case KernelPolicy::kHash: return "hash";
  }
  return "?";
}

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kMerge: return "merge";
    case KernelKind::kGalloping: return "galloping";
    case KernelKind::kBitmap: return "bitmap";
    case KernelKind::kHash: return "hash";
  }
  return "?";
}

bool parse_policy(std::string_view name, KernelPolicy& out) {
  if (name == "auto") {
    out = KernelPolicy::kAuto;
  } else if (name == "merge") {
    out = KernelPolicy::kMerge;
  } else if (name == "galloping") {
    out = KernelPolicy::kGalloping;
  } else if (name == "bitmap") {
    out = KernelPolicy::kBitmap;
  } else if (name == "hash") {
    out = KernelPolicy::kHash;
  } else {
    return false;
  }
  return true;
}

KernelKind choose_kernel(KernelPolicy policy, std::size_t hashed_len,
                         std::size_t probe_len, double hashed_density) {
  switch (policy) {
    case KernelPolicy::kMerge: return KernelKind::kMerge;
    case KernelPolicy::kGalloping: return KernelKind::kGalloping;
    case KernelPolicy::kBitmap: return KernelKind::kBitmap;
    case KernelPolicy::kHash: return KernelKind::kHash;
    case KernelPolicy::kAuto: break;
  }
  const std::size_t longer = std::max(hashed_len, probe_len);
  const std::size_t shorter =
      std::max<std::size_t>(1, std::min(hashed_len, probe_len));
  if (longer / shorter >= AutoThresholds::kGallopingSkew) {
    return KernelKind::kGalloping;
  }
  if (hashed_len >= AutoThresholds::kBitmapMinRow &&
      hashed_density >= AutoThresholds::kBitmapMinDensity) {
    return KernelKind::kBitmap;
  }
  return KernelKind::kHash;
}

KernelCounters& KernelCounters::operator+=(const KernelCounters& other) {
  intersection_tasks += other.intersection_tasks;
  lookups += other.lookups;
  hits += other.hits;
  probes += other.probes;
  hash_builds += other.hash_builds;
  direct_builds += other.direct_builds;
  rows_visited += other.rows_visited;
  early_exits += other.early_exits;
  merge_calls += other.merge_calls;
  merge_steps += other.merge_steps;
  galloping_calls += other.galloping_calls;
  galloping_steps += other.galloping_steps;
  bitmap_calls += other.bitmap_calls;
  bitmap_tests += other.bitmap_tests;
  bitmap_builds += other.bitmap_builds;
  hash_calls += other.hash_calls;
  hash_lookups += other.hash_lookups;
  return *this;
}

}  // namespace tricount::kernels
