// The hash set used for map-based set intersection (paper §3.1, §5.2).
//
// One adjacency list (the hashed row) is inserted, then the other list's
// entries are looked up; each hit closes a triangle. Capacities are powers
// of two so the slot index is a single bitwise AND (`key & mask`).
//
// Two operating modes implement the paper's "modifying the hashing routine
// for sparser vertices" optimization:
//  * kDirect  -- insertion attempted with no probing: slot = key & mask.
//                If every key of the list lands in its own slot (which the
//                paper's heuristic predicts for short lists after the 2D
//                decomposition shrinks adjacency lists by ~√p), lookups are
//                a single load + compare. If a collision *does* occur we
//                fall back to probing, so counts stay exact regardless of
//                the heuristic's accuracy.
//  * kProbing -- classic linear probing.
//
// The structure also counts probe steps, which §7.1 of the paper uses to
// explain the twitter-vs-friendster speedup difference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tricount::hashmap {

class VertexHashSet {
 public:
  using Key = std::uint32_t;
  /// Sentinel marking an empty slot; may not be used as a vertex id.
  static constexpr Key kEmpty = ~Key{0};

  enum class Mode { kDirect, kProbing };

  VertexHashSet() = default;

  /// Ensures capacity for a list of `list_len` keys with a comfortable
  /// load factor. Never shrinks. Invalidates current contents.
  void reserve_for(std::size_t list_len);

  /// Clears previous contents and inserts `keys`.
  ///
  /// If `allow_direct` and the list is no longer than the paper's
  /// heuristic threshold, insertion first tries direct (probe-free) mode;
  /// on the first collision the build restarts in probing mode.
  /// Returns the mode that ended up in effect. Duplicate keys are allowed
  /// (idempotent). kEmpty must not appear in `keys`.
  Mode build(std::span<const Key> keys, bool allow_direct);

  /// Membership test. Valid only after build().
  bool contains(Key key) const;

  /// Number of slots (power of two). 0 before the first reserve/build.
  std::size_t capacity() const { return slots_.size(); }
  Mode mode() const { return mode_; }
  std::size_t size() const { return touched_.size(); }

  /// Total probe steps performed by build() and contains() since the last
  /// reset_probes(). A "probe step" is one slot inspection beyond the
  /// initial masked index.
  std::uint64_t probes() const { return probes_; }
  void reset_probes() { probes_ = 0; }
  /// Restores a previously read tally — checkpoint recovery rolls the
  /// counter back so a re-executed superstep is not double-counted.
  void set_probes(std::uint64_t probes) { probes_ = probes; }

  /// Rolls the table geometry back to a checkpointed `capacity()` value
  /// (recovery-only; reserve_for never shrinks). Probe counts and the
  /// direct-mode threshold depend on the capacity in effect, so a crash
  /// replay must re-run under the capacity the discarded pass started
  /// with or its tallies diverge. Invalidates contents.
  void restore_capacity(std::size_t slots);

  /// The heuristic from §5.2: a list is treated as collision-free material
  /// when it is shorter than this fraction of the table.
  static std::size_t direct_threshold(std::size_t capacity) {
    return capacity / 2;
  }

 private:
  void clear_touched();
  void insert_probing(Key key);

  std::vector<Key> slots_;
  /// Slot indices written by the current build; enables O(list) clears
  /// instead of O(capacity) fills.
  std::vector<std::uint32_t> touched_;
  std::size_t mask_ = 0;
  Mode mode_ = Mode::kProbing;
  mutable std::uint64_t probes_ = 0;
};

/// Rounds up to the next power of two (min 1).
std::size_t next_power_of_two(std::size_t n);

}  // namespace tricount::hashmap
