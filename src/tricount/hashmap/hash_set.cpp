#include "tricount/hashmap/hash_set.hpp"

#include <stdexcept>

namespace tricount::hashmap {

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void VertexHashSet::reserve_for(std::size_t list_len) {
  // 4x headroom keeps the probing load factor <= 0.25 and makes the
  // direct-mode heuristic succeed often on short lists.
  const std::size_t wanted = next_power_of_two(std::max<std::size_t>(16, list_len * 4));
  if (wanted <= slots_.size()) return;
  slots_.assign(wanted, kEmpty);
  touched_.clear();
  mask_ = wanted - 1;
}

void VertexHashSet::restore_capacity(std::size_t slots) {
  if (slots == slots_.size()) return;
  slots_.assign(slots, kEmpty);
  touched_.clear();
  mask_ = slots == 0 ? 0 : slots - 1;
}

void VertexHashSet::clear_touched() {
  for (const std::uint32_t at : touched_) slots_[at] = kEmpty;
  touched_.clear();
}

void VertexHashSet::insert_probing(Key key) {
  std::size_t at = key & mask_;
  while (slots_[at] != kEmpty) {
    if (slots_[at] == key) return;  // duplicate
    ++probes_;
    at = (at + 1) & mask_;
  }
  slots_[at] = key;
  touched_.push_back(static_cast<std::uint32_t>(at));
}

VertexHashSet::Mode VertexHashSet::build(std::span<const Key> keys,
                                         bool allow_direct) {
  reserve_for(keys.size());
  clear_touched();

  if (allow_direct && keys.size() < direct_threshold(slots_.size())) {
    // Optimistic probe-free insertion (§5.2). On the average, after the 2D
    // decomposition, lists are √p shorter, so this nearly always succeeds.
    mode_ = Mode::kDirect;
    for (const Key key : keys) {
      if (key == kEmpty) {
        clear_touched();
        throw std::invalid_argument("VertexHashSet: reserved key inserted");
      }
      const std::size_t at = key & mask_;
      if (slots_[at] == kEmpty) {
        slots_[at] = key;
        touched_.push_back(static_cast<std::uint32_t>(at));
      } else if (slots_[at] != key) {
        // Collision: the heuristic was wrong for this list. Restart in
        // probing mode so correctness never depends on the heuristic.
        clear_touched();
        mode_ = Mode::kProbing;
        break;
      }
    }
    if (mode_ == Mode::kDirect) return mode_;
  } else {
    mode_ = Mode::kProbing;
  }

  for (const Key key : keys) {
    if (key == kEmpty) {
      clear_touched();
      throw std::invalid_argument("VertexHashSet: reserved key inserted");
    }
    insert_probing(key);
  }
  return mode_;
}

bool VertexHashSet::contains(Key key) const {
  if (slots_.empty()) return false;
  std::size_t at = key & mask_;
  if (mode_ == Mode::kDirect) {
    return slots_[at] == key;
  }
  while (slots_[at] != kEmpty) {
    if (slots_[at] == key) return true;
    ++probes_;
    at = (at + 1) & mask_;
  }
  return false;
}

}  // namespace tricount::hashmap
