// Machine-readable run artifacts: the modeled per-rank trace and the
// metrics snapshot for a completed 2D counting run.
//
// The trace is a virtual timeline rebuilt from the per-(rank, superstep)
// samples the pipeline records: superstep boundaries are aligned across
// ranks (the algorithm is bulk-synchronous per shift) and each superstep
// is stretched to its PhaseBreakdown::modeled_seconds, so the "modeled"
// summary timeline's per-phase span sums equal pre/tc_modeled_seconds
// exactly. Each rank's row shows its own measured compute time and its
// own α–β-modeled communication inside the superstep window — the
// per-shift load imbalance of Table 3, readable in Perfetto.
//
// The metrics artifact routes every measured quantity (KernelCounters,
// phase times, traffic totals) through an obs::Registry snapshot and
// attaches the p×p communication matrix. Schema: docs/observability.md.
#pragma once

#include <string>

#include "tricount/core/driver.hpp"
#include "tricount/obs/analysis.hpp"
#include "tricount/obs/json.hpp"
#include "tricount/obs/metrics.hpp"
#include "tricount/obs/msgtrace.hpp"
#include "tricount/obs/trace.hpp"

namespace tricount::core {

/// Chrome trace-event timeline of the run: tid 0 is the modeled
/// cross-rank summary, tid r+1 is rank r. Rank spans carry the analyzer's
/// critical-path annotations (slack_seconds, straggler flag); the modeled
/// row records each superstep's bounding_rank and imbalance.
obs::Trace build_run_trace(const RunResult& result);

/// The analyzer's input built directly from a RunResult, bit-identical to
/// parsing the saved metrics artifact (the JSON layer round-trips doubles
/// exactly). Feeds `tricount_cli count --analyze` without a temp file.
obs::analysis::RunReport build_run_report(const RunResult& result);

/// Registry snapshot of every run measurement (kernel.*, phase.*,
/// comm.*) — see docs/observability.md for the naming convention.
obs::Snapshot build_run_snapshot(const RunResult& result);

/// Full metrics artifact: run metadata + registry snapshot + per-step
/// breakdowns + the p×p comm matrix + per-rank traffic counters.
obs::json::Value build_run_metrics(const RunResult& result);

/// The comm matrix as JSON (also embedded in build_run_metrics). With
/// `include_chaos` the reliability-overhead columns (chaos_messages /
/// chaos_bytes) are emitted too — chaos runs only, so fault-free
/// artifacts stay byte-identical to pre-chaos baselines.
obs::json::Value comm_matrix_to_json(const mpisim::CommMatrix& matrix,
                                     bool include_chaos = false);

/// Full tricount.msgtrace.v1 artifact: the captured causal records
/// (obs::MsgTrace::to_json) plus the run header and the modeled per-step
/// table the analyzer compares measurements against.
obs::json::Value build_run_msgtrace(const RunResult& result,
                                    const obs::MsgTrace& trace);

void write_run_trace(const RunResult& result, const std::string& path);
void write_run_metrics(const RunResult& result, const std::string& path);
void write_run_msgtrace(const RunResult& result, const obs::MsgTrace& trace,
                        const std::string& path);

}  // namespace tricount::core
