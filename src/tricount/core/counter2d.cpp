#include "tricount/core/counter2d.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/runtime.hpp"
#include "tricount/obs/msgtrace.hpp"
#include "tricount/obs/telemetry.hpp"
#include "tricount/obs/trace.hpp"
#include "tricount/util/time.hpp"

namespace tricount::core {

namespace {

// User-space tags for the shift traffic (well below kReservedTagBase).
constexpr int kTagUBlock = 101;
constexpr int kTagLBlock = 102;
constexpr int kTagUArrays = 103;  // non-blob mode sends arrays separately
constexpr int kTagLArrays = 104;

/// Ships a block to `dest` and receives this rank's next block from `src`.
/// Blob mode: one message round-trip per block (§5.2). Array mode: the
/// four arrays travel as separate messages and are reassembled — the
/// serialization overhead the blob optimization removes.
BlockCsr shift_block(mpisim::Comm& comm, BlockCsr block, int dest, int src,
                     int blob_tag, int array_tag, bool blob_comm) {
  if (blob_comm) {
    const std::vector<std::byte> blob = block.to_blob();
    mpisim::Message m = comm.sendrecv_bytes(
        dest, blob_tag, std::span<const std::byte>(blob), src, blob_tag);
    return BlockCsr::from_blob(m.payload);
  }
  const std::uint64_t rows = block.num_local_rows();
  comm.send_value<std::uint64_t>(dest, array_tag, rows);
  comm.send<std::uint64_t>(dest, array_tag, block.xadj());
  comm.send<VertexId>(dest, array_tag, block.adj());
  comm.send<VertexId>(dest, array_tag, block.nonempty());
  const auto in_rows = comm.recv_value<std::uint64_t>(src, array_tag);
  auto in_xadj = comm.recv<std::uint64_t>(src, array_tag);
  auto in_adj = comm.recv<VertexId>(src, array_tag);
  auto in_nonempty = comm.recv<VertexId>(src, array_tag);
  // Reassemble via the entry path to keep one construction code path.
  std::vector<LocalEntry> entries;
  entries.reserve(in_adj.size());
  for (VertexId r = 0; r + 1 < in_xadj.size(); ++r) {
    for (std::uint64_t at = in_xadj[r]; at < in_xadj[r + 1]; ++at) {
      entries.push_back(LocalEntry{r, in_adj[at]});
    }
  }
  (void)in_nonempty;
  return BlockCsr::from_entries(static_cast<VertexId>(in_rows),
                                std::move(entries));
}

/// Approximate heap footprint of one block for the live-telemetry memory
/// gauges — the CSR arrays, not an exact allocator tally.
std::uint64_t block_bytes(const BlockCsr& b) {
  return b.xadj().size() * sizeof(std::uint64_t) +
         (b.adj().size() + b.nonempty().size()) * sizeof(VertexId);
}

}  // namespace

TriangleCount intersect_blocks(const BlockCsr& tasks, const BlockCsr& ublock,
                               const BlockCsr& lblock, const Config& config,
                               kernels::IntersectScratch& scratch,
                               KernelCounters& counters) {
  TriangleCount found = 0;

  auto process_row = [&](VertexId r) {
    ++counters.rows_visited;
    const auto task_cols = tasks.row(r);
    if (task_cols.empty()) return;
    const auto urow = ublock.row(r);
    if (urow.empty()) return;  // no closing vertices in this column block

    scratch.begin_row(urow, config.modified_hashing);

    for (const VertexId e : task_cols) {
      if (e >= lblock.num_local_rows()) continue;
      const auto lrow = lblock.row(e);
      if (lrow.empty()) continue;
      ++counters.intersection_tasks;
      found += scratch.task(config.kernel, lrow, config.backward_early_exit,
                            counters);
    }
  };

  if (config.doubly_sparse) {
    for (const VertexId r : tasks.nonempty()) process_row(r);
  } else {
    for (VertexId r = 0; r < tasks.num_local_rows(); ++r) process_row(r);
  }
  return found;
}

CountOutput cannon_count(mpisim::Cart2D& grid, Blocks blocks,
                         const Config& config) {
  mpisim::Comm& comm = grid.comm();
  const int q = grid.q();
  CountOutput out;

  kernels::IntersectScratch scratch;
  // Sized from the *current* U block, not just the initial one: a
  // shifted-in block can carry longer rows, and an undersized table
  // degrades into mid-superstep rehashes — re-checked after every shift
  // and on recovery restore (reserve_for never shrinks).
  auto reserve_scratch = [&] {
    scratch.reserve_for(std::max<std::size_t>(
        {blocks.ublock.max_row_degree(), std::size_t{16}}));
  };
  reserve_scratch();
  scratch.reset_probes();

  // Chaos schedule for this rank (docs/chaos.md): a scheduled fail-restart
  // forces superstep checkpointing so the crashed superstep can be
  // re-executed from the blocks as they were when it started.
  mpisim::World& world = comm.world();
  const mpisim::FaultInjector* injector = world.fault_injector();
  const int rank = comm.rank();
  const int crash_step =
      injector != nullptr ? injector->crash_superstep(rank) : -1;
  const double straggler =
      injector != nullptr ? injector->straggler_factor(rank) : 1.0;
  const bool checkpointing = config.checkpoint || crash_step >= 0;

  /// Everything the fail-restart model loses: the three blocks plus the
  /// partial count and kernel tallies accumulated before this superstep.
  struct Checkpoint {
    std::vector<std::byte> ublock;
    std::vector<std::byte> lblock;
    std::vector<std::byte> tasks;
    TriangleCount local_triangles = 0;
    KernelCounters kernel;
    std::uint64_t lookups_before = 0;
    /// The scratch's cumulative probe tally lives outside out.kernel until
    /// the loop ends; without this field a recovery keeps the discarded
    /// superstep's probes and out.kernel.probes over-reports.
    std::uint64_t probes = 0;
    /// Hash capacity in effect at the checkpoint: the replay must rerun
    /// under the same table geometry or its probe/direct-mode tallies
    /// diverge from the pass it discards.
    std::size_t hash_capacity = 0;
  };
  Checkpoint ckpt;

  // Live telemetry + flight recorder: publish superstep progress at every
  // loop entry. The flight "superstep" counter doubles as the crash
  // witness — on a chaos crash the dump's final superstep record is the
  // superstep the recovery path reports.
  obs::RankTelemetry* live = nullptr;
  if (obs::Telemetry* telemetry = obs::Telemetry::current()) {
    live = telemetry->for_caller();
  }
  auto publish_live = [&](int step) {
    if (live != nullptr) {
      live->phase.store("tc", std::memory_order_relaxed);
      live->superstep.store(step, std::memory_order_relaxed);
      live->total_supersteps.store(q, std::memory_order_relaxed);
      live->triangles.store(static_cast<std::uint64_t>(out.local_triangles),
                            std::memory_order_relaxed);
      live->lookups.store(out.kernel.lookups, std::memory_order_relaxed);
      live->graph_bytes.store(
          block_bytes(blocks.ublock) + block_bytes(blocks.lblock),
          std::memory_order_relaxed);
      live->partition_bytes.store(block_bytes(blocks.tasks),
                                  std::memory_order_relaxed);
      live->scratch_bytes.store(scratch.hash_capacity() * sizeof(VertexId),
                                std::memory_order_relaxed);
    }
    if (obs::FlightRecorder* flight = obs::FlightRecorder::current()) {
      flight->counter("superstep", "tc", static_cast<double>(step));
    }
    if (obs::MsgTrace* mt = obs::MsgTrace::current()) {
      mt->note_superstep(step);
    }
  };

  PhaseTracker tracker(comm);
  std::uint64_t lookups_before = 0;
  for (int s = 0; s < q; ++s) {
    publish_live(s);
    if (checkpointing) {
      obs::ScopedSpan span("checkpoint", "chaos");
      ckpt.ublock = blocks.ublock.to_blob();
      ckpt.lblock = blocks.lblock.to_blob();
      ckpt.tasks = blocks.tasks.to_blob();
      ckpt.local_triangles = out.local_triangles;
      ckpt.kernel = out.kernel;
      ckpt.lookups_before = lookups_before;
      ckpt.probes = scratch.probes();
      ckpt.hash_capacity = scratch.hash_capacity();
    }
    // Overlap mode posts the next shift before intersecting: buffered
    // isends copy the blobs up front, so computing on the blocks while
    // the shift is in flight is safe, and the irecvs complete after the
    // intersection. Always blob format — a four-message array shift has
    // no single completion event to hide behind the compute.
    const bool overlapped = config.overlap && s + 1 < q;
    mpisim::Request u_req;
    mpisim::Request l_req;
    if (overlapped) {
      obs::ScopedSpan span("shift", "tc");
      const std::vector<std::byte> ublob = blocks.ublock.to_blob();
      const std::vector<std::byte> lblob = blocks.lblock.to_blob();
      (void)comm.isend_bytes(grid.left(), kTagUBlock,
                             std::span<const std::byte>(ublob));
      (void)comm.isend_bytes(grid.up(), kTagLBlock,
                             std::span<const std::byte>(lblob));
      u_req = comm.irecv(grid.right(), kTagUBlock);
      l_req = comm.irecv(grid.down(), kTagLBlock);
    }
    {
      obs::ScopedSpan span("intersect", "tc");
      out.local_triangles += intersect_blocks(blocks.tasks, blocks.ublock,
                                              blocks.lblock, config, scratch,
                                              out.kernel);
    }
    if (s == crash_step) {
      // One-shot fail-restart: this rank loses the superstep's results,
      // restores the checkpoint, and re-executes the intersection. The
      // shifts have not happened yet, so peers are unaffected; the
      // recovery cost lands in this rank's compute sample (and the
      // modeled max-over-ranks superstep time).
      mpisim::ChaosCounters& cc = world.chaos_counters(rank);
      cc.crashes += 1;
      if (obs::Tracer* tracer = obs::Tracer::current()) {
        tracer->instant("chaos.crash", "chaos");
      }
      if (obs::FlightRecorder* flight = obs::FlightRecorder::current()) {
        // Dump at the crash instant: the last "superstep" counter in the
        // crashing rank's stream is exactly the failed superstep.
        flight->instant("chaos.crash", "chaos", static_cast<double>(s));
        flight->try_auto_dump("chaos-crash");
      }
      const double t0 = util::thread_cpu_seconds();
      {
        obs::ScopedSpan span("recover", "chaos");
        blocks.ublock = BlockCsr::from_blob(ckpt.ublock);
        blocks.lblock = BlockCsr::from_blob(ckpt.lblock);
        blocks.tasks = BlockCsr::from_blob(ckpt.tasks);
        out.local_triangles = ckpt.local_triangles;
        out.kernel = ckpt.kernel;
        lookups_before = ckpt.lookups_before;
        scratch.restore(ckpt.hash_capacity, ckpt.probes);
        out.local_triangles += intersect_blocks(blocks.tasks, blocks.ublock,
                                                blocks.lblock, config, scratch,
                                                out.kernel);
      }
      cc.recoveries += 1;
      cc.recovery_seconds += util::thread_cpu_seconds() - t0;
    }
    if (s + 1 < q) {
      // U one column left, L one row up (paper §5.1). Buffered sends keep
      // the ring deadlock-free in both modes.
      obs::ScopedSpan span("shift", "tc");
      if (overlapped) {
        blocks.ublock = BlockCsr::from_blob(u_req.wait().payload);
        blocks.lblock = BlockCsr::from_blob(l_req.wait().payload);
      } else {
        blocks.ublock = shift_block(comm, std::move(blocks.ublock),
                                    grid.left(), grid.right(), kTagUBlock,
                                    kTagUArrays, config.blob_comm);
        blocks.lblock =
            shift_block(comm, std::move(blocks.lblock), grid.up(), grid.down(),
                        kTagLBlock, kTagLArrays, config.blob_comm);
      }
      reserve_scratch();
    }
    PhaseSample sample = tracker.cut();
    sample.overlapped = overlapped;
    if (straggler > 1.0) {
      // Modeled slowdown: inflate the compute reading the α–β model sees;
      // the injected share is tallied so reports can subtract it.
      mpisim::ChaosCounters& cc = world.chaos_counters(rank);
      cc.straggler_steps += 1;
      cc.straggler_injected_seconds +=
          (straggler - 1.0) * sample.compute_cpu_seconds;
      sample.compute_cpu_seconds *= straggler;
    }
    sample.ops = out.kernel.lookups - lookups_before;
    lookups_before = out.kernel.lookups;
    out.shifts.push_back(sample);
  }
  out.kernel.probes = scratch.probes();
  if (live != nullptr) {
    // Final readings: superstep == q renders as "q/q" (done) in the
    // streaming views.
    live->superstep.store(q, std::memory_order_relaxed);
    live->triangles.store(static_cast<std::uint64_t>(out.local_triangles),
                          std::memory_order_relaxed);
    live->lookups.store(out.kernel.lookups, std::memory_order_relaxed);
  }

  out.total_triangles = mpisim::allreduce_sum(comm, out.local_triangles);
  return out;
}

}  // namespace tricount::core
