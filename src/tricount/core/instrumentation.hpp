// Instrumentation: the measured quantities the paper's evaluation section
// is built from.
//
// Every phase of the algorithm records, per rank:
//   * compute CPU seconds (thread CPU clock — valid under oversubscription)
//   * message and byte counts (from the mpisim PerfCounters delta)
// The triangle counting phase additionally records per-shift compute
// times (Table 3's load imbalance), the number of map-intersection tasks
// (Table 4's redundant work), and hash-probe counts (§7.1's twitter vs
// friendster analysis).
//
// Modeled parallel time of a superstep = max-over-ranks compute + α–β cost
// of the max-over-ranks traffic; a phase is the sum of its supersteps.
// See DESIGN.md §1 for why this substitution reproduces the paper's
// scaling shape on one physical core.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tricount/kernels/kernels.hpp"
#include "tricount/mpisim/comm.hpp"
#include "tricount/util/cost_model.hpp"
#include "tricount/util/time.hpp"

namespace tricount::core {

/// One rank's measurements for one superstep (or phase treated as one).
struct PhaseSample {
  double compute_cpu_seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// CPU spent inside communication calls (packing/copying); charged to
  /// communication, not compute.
  double comm_cpu_seconds = 0.0;
  /// Abstract operation count for this phase (adjacency entries processed
  /// in preprocessing, hash lookups in counting); feeds the Figure 2
  /// operation-rate plot.
  std::uint64_t ops = 0;
  /// True when this superstep ran with communication posted before the
  /// compute (Config::overlap); the α–β model then charges
  /// max(compute, network) instead of their sum (docs/overlap.md).
  bool overlapped = false;

  PhaseSample& operator+=(const PhaseSample& other);
};

/// The counter bundle lives with the kernels it instruments
/// (tricount/kernels/kernels.hpp); core keeps the historical name.
using KernelCounters = kernels::KernelCounters;

/// Everything one rank measured during a full run.
struct RankStats {
  /// Ordered preprocessing supersteps (same keys on every rank).
  std::vector<std::pair<std::string, PhaseSample>> pre_steps;
  /// One sample per Cannon shift (compute + the shift's communication).
  std::vector<PhaseSample> shifts;
  KernelCounters kernel;

  PhaseSample pre_total() const;
  PhaseSample tc_total() const;
};

/// Captures (compute CPU, traffic) deltas around a superstep on one rank.
class PhaseTracker {
 public:
  explicit PhaseTracker(mpisim::Comm& comm);

  /// Finishes the current superstep and returns its sample; restarts
  /// tracking for the next superstep.
  PhaseSample cut();

 private:
  mpisim::Comm& comm_;
  double cpu_at_ = 0.0;
  mpisim::PerfCounters counters_at_;
};

/// Aggregated view over all ranks, produced on rank 0 after a run.
struct PhaseBreakdown {
  double max_compute_seconds = 0.0;
  double avg_compute_seconds = 0.0;
  std::uint64_t max_messages = 0;
  std::uint64_t max_bytes = 0;
  std::uint64_t total_bytes = 0;
  double max_comm_cpu_seconds = 0.0;
  /// Set when every contributing sample ran overlapped (Config::overlap).
  bool overlapped = false;

  /// Modeled superstep time: slowest rank's compute plus the α–β cost of
  /// the heaviest rank's traffic (plus measured packing CPU). For an
  /// overlapped superstep the network term is charged only where it
  /// exceeds the compute it was hidden behind:
  ///   modeled = max_compute + (network - hidden) + max_comm_cpu
  /// with hidden = min(max_compute, network) — i.e. max(compute, network)
  /// plus the packing CPU, which a posted request cannot hide.
  double modeled_seconds(const util::AlphaBetaModel& model) const;
  double modeled_comm_seconds(const util::AlphaBetaModel& model) const;
  /// The α–β network seconds hidden behind compute (0 when not
  /// overlapped) — the numerator of the reported overlap efficiency.
  double hidden_seconds(const util::AlphaBetaModel& model) const;
};

/// Reduces one superstep across ranks.
PhaseBreakdown breakdown(const std::vector<PhaseSample>& per_rank);

}  // namespace tricount::core
