#include "tricount/core/summa2d.hpp"

#include <numeric>
#include <stdexcept>

#include "tricount/core/counter2d.hpp"
#include "tricount/core/dist_graph.hpp"
#include "tricount/core/preprocess.hpp"
#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/runtime.hpp"
#include "tricount/obs/msgtrace.hpp"
#include "tricount/obs/telemetry.hpp"
#include "tricount/obs/trace.hpp"
#include "tricount/util/time.hpp"

namespace tricount::core {

namespace {

constexpr int kTagSummaU = 201;
constexpr int kTagSummaL = 202;

struct PanelEntry {
  VertexId panel = 0;
  VertexId row = 0;
  VertexId col = 0;
};

struct SummaBlocks {
  std::vector<BlockCsr> upanels;  ///< panel z = col + t*qc at index t
  std::vector<BlockCsr> lpanels;  ///< panel z = row + t*qr at index t
  BlockCsr tasks;
};

SummaBlocks scatter_summa(mpisim::Comm& comm, int qr, int qc, int K,
                          const RelabeledSlice& slice,
                          Enumeration enumeration) {
  const auto qrv = static_cast<VertexId>(qr);
  const auto qcv = static_cast<VertexId>(qc);
  const auto Kv = static_cast<VertexId>(K);
  const std::size_t p = static_cast<std::size_t>(comm.size());
  auto rank_of = [qc](int x, int y) { return x * qc + y; };

  std::vector<std::vector<PanelEntry>> u_out(p);
  std::vector<std::vector<PanelEntry>> l_out(p);
  std::vector<std::vector<PanelEntry>> t_out(p);

  for (std::size_t k = 0; k < slice.adj.size(); ++k) {
    const VertexId w = slice.new_ids[k];
    for (const VertexId u : slice.adj[k]) {
      if (u > w) {
        const VertexId z = u % Kv;
        // U_{x,z} at rank (w%qr, z%qc).
        const int u_dest = rank_of(static_cast<int>(w % qrv),
                                   static_cast<int>(z % qcv));
        u_out[static_cast<std::size_t>(u_dest)].push_back(
            PanelEntry{z, w / qrv, u / Kv});
        // L_{z,y} at rank (z%qr, w%qc), stored row-major by i = w.
        const int l_dest = rank_of(static_cast<int>(z % qrv),
                                   static_cast<int>(w % qcv));
        l_out[static_cast<std::size_t>(l_dest)].push_back(
            PanelEntry{z, w / qcv, u / Kv});
        if (enumeration == Enumeration::kIJK) {
          const int t_dest = rank_of(static_cast<int>(w % qrv),
                                     static_cast<int>(u % qcv));
          t_out[static_cast<std::size_t>(t_dest)].push_back(
              PanelEntry{0, w / qrv, u / qcv});
        }
      } else if (u < w && enumeration == Enumeration::kJIK) {
        const int t_dest = rank_of(static_cast<int>(w % qrv),
                                   static_cast<int>(u % qcv));
        t_out[static_cast<std::size_t>(t_dest)].push_back(
            PanelEntry{0, w / qrv, u / qcv});
      }
    }
  }

  const auto u_in = mpisim::alltoallv(comm, u_out);
  const auto l_in = mpisim::alltoallv(comm, l_out);
  const auto t_in = mpisim::alltoallv(comm, t_out);

  const int x = comm.rank() / qc;
  const int y = comm.rank() % qc;
  const VertexId n = slice.num_vertices;

  SummaBlocks blocks;
  // Split incoming panel entries by local panel index, then build CSRs.
  const int u_count = K / qc;
  const int l_count = K / qr;
  std::vector<std::vector<LocalEntry>> u_split(static_cast<std::size_t>(u_count));
  std::vector<std::vector<LocalEntry>> l_split(static_cast<std::size_t>(l_count));
  for (const auto& bucket : u_in) {
    for (const PanelEntry& e : bucket) {
      u_split[e.panel / static_cast<VertexId>(qc)].push_back(
          LocalEntry{e.row, e.col});
    }
  }
  for (const auto& bucket : l_in) {
    for (const PanelEntry& e : bucket) {
      l_split[e.panel / static_cast<VertexId>(qr)].push_back(
          LocalEntry{e.row, e.col});
    }
  }
  const VertexId u_rows = cyclic_row_count(n, qr, x);
  const VertexId l_rows = cyclic_row_count(n, qc, y);
  for (auto& entries : u_split) {
    blocks.upanels.push_back(BlockCsr::from_entries(u_rows, std::move(entries)));
  }
  for (auto& entries : l_split) {
    blocks.lpanels.push_back(BlockCsr::from_entries(l_rows, std::move(entries)));
  }
  std::vector<LocalEntry> task_entries;
  for (const auto& bucket : t_in) {
    for (const PanelEntry& e : bucket) {
      task_entries.push_back(LocalEntry{e.row, e.col});
    }
  }
  blocks.tasks = BlockCsr::from_entries(u_rows, std::move(task_entries));
  return blocks;
}

/// Approximate CSR heap footprint of one block, for the live-telemetry
/// memory gauges (mirrors counter2d.cpp's block_bytes).
std::uint64_t summa_block_bytes(const BlockCsr& b) {
  return b.xadj().size() * sizeof(std::uint64_t) +
         (b.adj().size() + b.nonempty().size()) * sizeof(VertexId);
}

/// Owner broadcasts a block (as its §5.2 blob) to the other members of
/// its grid row/column via a binomial group broadcast.
BlockCsr panel_bcast(mpisim::Comm& comm, const BlockCsr* own,
                     int owner_index, std::span<const int> members) {
  std::vector<std::byte> blob;
  if (own != nullptr) blob = own->to_blob();
  mpisim::bcast_group(comm, blob, members, owner_index);
  if (own != nullptr) return *own;
  return BlockCsr::from_blob(blob);
}

}  // namespace

mpisim::ChaosCounters SummaResult::total_chaos() const {
  mpisim::ChaosCounters total;
  for (const mpisim::ChaosCounters& c : per_rank_chaos) total += c;
  return total;
}

SummaResult count_triangles_summa(const graph::EdgeList& graph,
                                  const SummaOptions& options) {
  const int qr = options.grid_rows;
  const int qc = options.grid_cols;
  if (qr <= 0 || qc <= 0) {
    throw std::invalid_argument("summa: grid dims must be positive");
  }
  const int p = qr * qc;
  const int K = qr / std::gcd(qr, qc) * qc;

  SummaResult result;
  result.ranks = p;
  result.grid_rows = qr;
  result.grid_cols = qc;
  result.panels = K;

  std::vector<PhaseSample> pre_samples(static_cast<std::size_t>(p));
  std::vector<std::vector<PhaseSample>> step_samples(
      static_cast<std::size_t>(p));
  std::vector<KernelCounters> kernels(static_cast<std::size_t>(p));
  graph::TriangleCount triangles = 0;

  mpisim::WorldOptions world_options;
  world_options.fault_injector = options.chaos.get();
  world_options.watchdog_seconds = options.watchdog_seconds;
  result.chaos_enabled = options.chaos != nullptr;

  mpisim::WorldReport report = mpisim::run_world_report(p, [&](mpisim::Comm& comm) {
    const int x = comm.rank() / qc;
    const int y = comm.rank() % qc;
    PhaseTracker tracker(comm);

    // Chaos schedule for this rank; mirrors cannon_count (docs/chaos.md).
    const mpisim::FaultInjector* injector = comm.world().fault_injector();
    const int crash_step =
        injector != nullptr ? injector->crash_superstep(comm.rank()) : -1;
    const double straggler =
        injector != nullptr ? injector->straggler_factor(comm.rank()) : 1.0;
    const bool checkpointing = options.config.checkpoint || crash_step >= 0;

    const LocalSlice input =
        block_slice_from_edges(graph, comm.rank(), comm.size());
    const CyclicSlice cyclic = cyclic_redistribute(comm, input);
    const RelabeledSlice relabeled = degree_relabel(comm, cyclic);
    SummaBlocks blocks =
        scatter_summa(comm, qr, qc, K, relabeled, options.config.enumeration);
    pre_samples[static_cast<std::size_t>(comm.rank())] = tracker.cut();

    std::vector<int> row_members;
    for (int c = 0; c < qc; ++c) row_members.push_back(x * qc + c);
    std::vector<int> col_members;
    for (int r = 0; r < qr; ++r) col_members.push_back(r * qc + y);

    kernels::IntersectScratch scratch;
    KernelCounters kernel;
    graph::TriangleCount local = 0;
    std::uint64_t lookups_before = 0;

    /// The fail-restart checkpoint: the task block plus the partial count
    /// and kernel tallies accumulated before this panel step. The U/L
    /// panels are re-received per step, so only tasks need a blob.
    struct Checkpoint {
      std::vector<std::byte> tasks;
      graph::TriangleCount local = 0;
      KernelCounters kernel;
      std::uint64_t lookups_before = 0;
      /// Cumulative scratch probe tally at step entry; restored on
      /// recovery so the discarded execution's probes are rolled back.
      std::uint64_t probes = 0;
      /// Hash capacity at step entry — the replay must rerun under the
      /// same table geometry to reproduce the discarded pass's tallies.
      std::size_t hash_capacity = 0;
    };
    Checkpoint ckpt;

    // Overlap mode replaces the binomial broadcast with a point-to-point
    // prefetch pipeline one panel ahead: step z+1's owners isend their
    // blobs (buffered, so the copy is immediate) and every other rank
    // posts irecvs before step z's intersection runs; the requests are
    // completed when the next step starts. Step 0's fetch is the pipeline
    // fill and cannot overlap anything.
    struct PanelFetch {
      mpisim::Request req;
      const BlockCsr* own = nullptr;
    };
    auto post_u = [&](int z) {
      PanelFetch f;
      const int u_owner = x * qc + (z % qc);
      if (comm.rank() == u_owner) {
        f.own = &blocks.upanels[static_cast<std::size_t>(z / qc)];
        const std::vector<std::byte> blob = f.own->to_blob();
        for (const int m : row_members) {
          if (m == comm.rank()) continue;
          (void)comm.isend_bytes(m, kTagSummaU,
                                 std::span<const std::byte>(blob));
        }
      } else {
        f.req = comm.irecv(u_owner, kTagSummaU);
      }
      return f;
    };
    auto post_l = [&](int z) {
      PanelFetch f;
      const int l_owner = (z % qr) * qc + y;
      if (comm.rank() == l_owner) {
        f.own = &blocks.lpanels[static_cast<std::size_t>(z / qr)];
        const std::vector<std::byte> blob = f.own->to_blob();
        for (const int m : col_members) {
          if (m == comm.rank()) continue;
          (void)comm.isend_bytes(m, kTagSummaL,
                                 std::span<const std::byte>(blob));
        }
      } else {
        f.req = comm.irecv(l_owner, kTagSummaL);
      }
      return f;
    };
    auto resolve = [](PanelFetch& f) {
      if (f.own != nullptr) return *f.own;
      return BlockCsr::from_blob(f.req.wait().payload);
    };

    const bool overlap = options.config.overlap;
    PanelFetch next_u;
    PanelFetch next_l;
    if (overlap) {
      next_u = post_u(0);
      next_l = post_l(0);
    }

    // Live telemetry + flight recorder, mirroring cannon_count: the
    // "superstep" flight counter marks each panel step so a crash dump's
    // final superstep record is the failed step.
    obs::RankTelemetry* live = nullptr;
    if (obs::Telemetry* telemetry = obs::Telemetry::current()) {
      live = telemetry->for_caller();
    }
    std::uint64_t panels_bytes = 0;
    for (const BlockCsr& b : blocks.upanels) {
      panels_bytes += summa_block_bytes(b);
    }
    for (const BlockCsr& b : blocks.lpanels) {
      panels_bytes += summa_block_bytes(b);
    }
    auto publish_live = [&](int step) {
      if (live != nullptr) {
        live->phase.store("tc", std::memory_order_relaxed);
        live->superstep.store(step, std::memory_order_relaxed);
        live->total_supersteps.store(K, std::memory_order_relaxed);
        live->triangles.store(static_cast<std::uint64_t>(local),
                              std::memory_order_relaxed);
        live->lookups.store(kernel.lookups, std::memory_order_relaxed);
        live->graph_bytes.store(panels_bytes, std::memory_order_relaxed);
        live->partition_bytes.store(summa_block_bytes(blocks.tasks),
                                    std::memory_order_relaxed);
        live->scratch_bytes.store(scratch.hash_capacity() * sizeof(VertexId),
                                  std::memory_order_relaxed);
      }
      if (obs::FlightRecorder* flight = obs::FlightRecorder::current()) {
        flight->counter("superstep", "tc", static_cast<double>(step));
      }
      if (obs::MsgTrace* mt = obs::MsgTrace::current()) {
        mt->note_superstep(step);
      }
    };

    auto& steps = step_samples[static_cast<std::size_t>(comm.rank())];
    for (int z = 0; z < K; ++z) {
      publish_live(z);
      if (checkpointing) {
        obs::ScopedSpan span("checkpoint", "chaos");
        ckpt.tasks = blocks.tasks.to_blob();
        ckpt.local = local;
        ckpt.kernel = kernel;
        ckpt.lookups_before = lookups_before;
        ckpt.probes = scratch.probes();
        ckpt.hash_capacity = scratch.hash_capacity();
      }
      BlockCsr uz;
      BlockCsr lz;
      if (overlap) {
        uz = resolve(next_u);
        lz = resolve(next_l);
        if (z + 1 < K) {
          next_u = post_u(z + 1);
          next_l = post_l(z + 1);
        }
      } else {
        const int u_owner = x * qc + (z % qc);
        const BlockCsr* own_u =
            comm.rank() == u_owner
                ? &blocks.upanels[static_cast<std::size_t>(z / qc)]
                : nullptr;
        uz = panel_bcast(comm, own_u, z % qc, row_members);
        const int l_owner = (z % qr) * qc + y;
        const BlockCsr* own_l =
            comm.rank() == l_owner
                ? &blocks.lpanels[static_cast<std::size_t>(z / qr)]
                : nullptr;
        lz = panel_bcast(comm, own_l, z % qr, col_members);
      }
      local += intersect_blocks(blocks.tasks, uz, lz, options.config, scratch,
                                kernel);
      if (z == crash_step) {
        // One-shot fail-restart, as in cannon_count: restore the
        // checkpoint and re-execute the step against the already-received
        // panels. Broadcasts for step z are complete, so peers never see
        // the crash.
        mpisim::ChaosCounters& cc = comm.world().chaos_counters(comm.rank());
        cc.crashes += 1;
        if (obs::Tracer* tracer = obs::Tracer::current()) {
          tracer->instant("chaos.crash", "chaos");
        }
        if (obs::FlightRecorder* flight = obs::FlightRecorder::current()) {
          flight->instant("chaos.crash", "chaos", static_cast<double>(z));
          flight->try_auto_dump("chaos-crash");
        }
        const double t0 = util::thread_cpu_seconds();
        {
          obs::ScopedSpan span("recover", "chaos");
          blocks.tasks = BlockCsr::from_blob(ckpt.tasks);
          local = ckpt.local;
          kernel = ckpt.kernel;
          lookups_before = ckpt.lookups_before;
          scratch.restore(ckpt.hash_capacity, ckpt.probes);
          local += intersect_blocks(blocks.tasks, uz, lz, options.config,
                                    scratch, kernel);
        }
        cc.recoveries += 1;
        cc.recovery_seconds += util::thread_cpu_seconds() - t0;
      }
      PhaseSample s = tracker.cut();
      if (straggler > 1.0) {
        mpisim::ChaosCounters& cc = comm.world().chaos_counters(comm.rank());
        cc.straggler_steps += 1;
        cc.straggler_injected_seconds +=
            (straggler - 1.0) * s.compute_cpu_seconds;
        s.compute_cpu_seconds *= straggler;
      }
      s.ops = kernel.lookups - lookups_before;
      lookups_before = kernel.lookups;
      s.overlapped = overlap;
      steps.push_back(s);
    }
    kernel.probes = scratch.probes();
    if (live != nullptr) {
      live->superstep.store(K, std::memory_order_relaxed);
      live->triangles.store(static_cast<std::uint64_t>(local),
                            std::memory_order_relaxed);
      live->lookups.store(kernel.lookups, std::memory_order_relaxed);
    }
    kernels[static_cast<std::size_t>(comm.rank())] = kernel;

    const graph::TriangleCount total = mpisim::allreduce_sum(comm, local);
    if (comm.rank() == 0) triangles = total;
  }, world_options);

  result.per_rank_chaos = std::move(report.chaos);
  result.triangles = triangles;
  result.pre_modeled_seconds =
      breakdown(pre_samples).modeled_seconds(options.model);
  for (int z = 0; z < K; ++z) {
    std::vector<PhaseSample> at_step;
    at_step.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      at_step.push_back(step_samples[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(z)]);
    }
    result.tc_modeled_seconds +=
        breakdown(at_step).modeled_seconds(options.model);
  }
  for (const KernelCounters& k : kernels) result.kernel += k;
  return result;
}

}  // namespace tricount::core
