#include "tricount/core/dist_truss.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "tricount/core/dist_graph.hpp"
#include "tricount/core/preprocess.hpp"
#include "tricount/hashmap/hash_set.hpp"
#include "tricount/mpisim/cart2d.hpp"
#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/runtime.hpp"

namespace tricount::core {

namespace {

constexpr int kTagU = 121;
constexpr int kTagL = 122;

using graph::TriangleCount;

std::uint64_t pack_edge(VertexId lo, VertexId hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

BlockCsr blob_shift(mpisim::Comm& comm, BlockCsr block, int dest, int src,
                    int tag) {
  const std::vector<std::byte> blob = block.to_blob();
  mpisim::Message m = comm.sendrecv_bytes(
      dest, tag, std::span<const std::byte>(blob), src, tag);
  return BlockCsr::from_blob(m.payload);
}

}  // namespace

std::vector<TriangleCount> edge_supports_2d(const graph::EdgeList& simplified,
                                            int ranks,
                                            const RunOptions& options) {
  if (mpisim::perfect_square_root(ranks) == 0) {
    throw std::invalid_argument(
        "edge_supports_2d: rank count must be a perfect square");
  }
  std::vector<TriangleCount> supports(simplified.edges.size(), 0);

  mpisim::run_world(ranks, [&](mpisim::Comm& comm) {
    mpisim::Cart2D grid(comm);
    const int p = comm.size();
    const int q = grid.q();
    const auto pv = static_cast<VertexId>(p);
    const auto qv = static_cast<VertexId>(q);
    const VertexId n = simplified.num_vertices;

    const LocalSlice input = block_slice_from_edges(simplified, comm.rank(), p);
    const CyclicSlice cyclic = cyclic_redistribute(comm, input);
    const RelabeledSlice relabeled = degree_relabel(comm, cyclic);
    Blocks blocks = scatter_2d(grid, relabeled, options.config.enumeration);

    // Reverse translation service: rank (w % p) learns the old id of new
    // id w for every w it "owns" in cyclic new-id space.
    std::vector<std::vector<VertexId>> rev_out(static_cast<std::size_t>(p));
    for (std::size_t k = 0; k < relabeled.new_ids.size(); ++k) {
      const VertexId w = relabeled.new_ids[k];
      auto& bucket = rev_out[w % pv];
      bucket.push_back(w);
      bucket.push_back(cyclic.global_id(static_cast<VertexId>(k)));
    }
    const auto rev_in = mpisim::alltoallv(comm, rev_out);
    std::vector<VertexId> old_of_new(cyclic_row_count(n, p, comm.rank()),
                                     graph::kInvalidVertex);
    for (const auto& bucket : rev_in) {
      for (std::size_t at = 0; at + 1 < bucket.size(); at += 2) {
        old_of_new[bucket[at] / pv] = bucket[at + 1];
      }
    }

    // --- triangle enumeration with per-edge credits ----------------------
    std::unordered_map<std::uint64_t, TriangleCount> credit;
    hashmap::VertexHashSet scratch;
    for (int s = 0; s < q; ++s) {
      const int z = (grid.row() + grid.col() + s) % q;
      const auto zv = static_cast<VertexId>(z);
      const auto xv = static_cast<VertexId>(grid.row());
      const auto yv = static_cast<VertexId>(grid.col());
      auto process_row = [&](VertexId r) {
        const auto task_cols = blocks.tasks.row(r);
        if (task_cols.empty()) return;
        const auto urow = blocks.ublock.row(r);
        if (urow.empty()) return;
        scratch.build(urow, options.config.modified_hashing);
        const VertexId umin = urow.front();
        const VertexId a = r * qv + xv;  // task row vertex
        for (const VertexId e : task_cols) {
          if (e >= blocks.lblock.num_local_rows()) continue;
          const auto lrow = blocks.lblock.row(e);
          const VertexId b = e * qv + yv;  // task column vertex
          for (std::size_t at = lrow.size(); at-- > 0;) {
            const VertexId t = lrow[at];
            if (t < umin) break;
            if (!scratch.contains(t)) continue;
            const VertexId k_global = t * qv + zv;
            const VertexId lo = std::min(a, b);
            const VertexId hi = std::max(a, b);
            ++credit[pack_edge(lo, hi)];
            ++credit[pack_edge(std::min(lo, k_global), std::max(lo, k_global))];
            ++credit[pack_edge(std::min(hi, k_global), std::max(hi, k_global))];
          }
        }
      };
      for (const VertexId r : blocks.tasks.nonempty()) process_row(r);
      if (s + 1 < q) {
        blocks.ublock = blob_shift(comm, std::move(blocks.ublock),
                                   grid.left(), grid.right(), kTagU);
        blocks.lblock = blob_shift(comm, std::move(blocks.lblock), grid.up(),
                                   grid.down(), kTagL);
      }
    }

    // --- reduce credits to the owner of each edge's lower endpoint ------
    std::vector<std::vector<VertexId>> credit_out(static_cast<std::size_t>(p));
    for (const auto& [packed, count] : credit) {
      const auto lo = static_cast<VertexId>(packed >> 32);
      const auto hi = static_cast<VertexId>(packed & 0xffffffffu);
      if (count > std::numeric_limits<VertexId>::max()) {
        throw std::overflow_error("edge_supports_2d: credit overflow");
      }
      auto& bucket = credit_out[lo % pv];
      bucket.push_back(lo);
      bucket.push_back(hi);
      bucket.push_back(static_cast<VertexId>(count));
    }
    const auto credit_in = mpisim::alltoallv(comm, credit_out);
    std::unordered_map<std::uint64_t, TriangleCount> owned_support;
    for (const auto& bucket : credit_in) {
      for (std::size_t at = 0; at + 2 < bucket.size(); at += 3) {
        owned_support[pack_edge(bucket[at], bucket[at + 1])] += bucket[at + 2];
      }
    }

    // --- translate new-id edges back to original ids ---------------------
    // lo's old id is local (we own the reverse map for lo % p == rank);
    // hi's old id is requested from hi's owner.
    std::vector<std::vector<VertexId>> ask(static_cast<std::size_t>(p));
    for (const auto& [packed, count] : owned_support) {
      const auto hi = static_cast<VertexId>(packed & 0xffffffffu);
      ask[hi % pv].push_back(hi);
    }
    for (auto& a : ask) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    const auto asked = mpisim::alltoallv(comm, ask);
    std::vector<std::vector<VertexId>> reply(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      for (const VertexId w : asked[static_cast<std::size_t>(r)]) {
        reply[static_cast<std::size_t>(r)].push_back(old_of_new[w / pv]);
      }
    }
    const auto replies = mpisim::alltoallv(comm, reply);
    auto old_of = [&](VertexId w) {
      const auto owner = static_cast<std::size_t>(w % pv);
      const auto& req = ask[owner];
      const auto it = std::lower_bound(req.begin(), req.end(), w);
      return replies[owner][static_cast<std::size_t>(it - req.begin())];
    };

    for (const auto& [packed, count] : owned_support) {
      const auto lo = static_cast<VertexId>(packed >> 32);
      const auto hi = static_cast<VertexId>(packed & 0xffffffffu);
      const VertexId old_lo = old_of_new[lo / pv];
      const VertexId old_hi = old_of(hi);
      const graph::Edge key{std::min(old_lo, old_hi),
                            std::max(old_lo, old_hi)};
      const auto it = std::lower_bound(simplified.edges.begin(),
                                       simplified.edges.end(), key);
      if (it == simplified.edges.end() || !(*it == key)) {
        throw std::runtime_error("edge_supports_2d: credited unknown edge");
      }
      // Each original edge is owned by exactly one rank; disjoint writes.
      supports[static_cast<std::size_t>(it - simplified.edges.begin())] =
          count;
    }
  });

  return supports;
}

graph::KtrussResult ktruss_2d(const graph::EdgeList& simplified, int ranks,
                              const RunOptions& options) {
  return graph::ktruss_from_supports(simplified,
                                     edge_supports_2d(simplified, ranks, options));
}

}  // namespace tricount::core
