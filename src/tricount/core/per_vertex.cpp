#include "tricount/core/per_vertex.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "tricount/core/counter2d.hpp"
#include "tricount/core/dist_graph.hpp"
#include "tricount/core/preprocess.hpp"
#include "tricount/hashmap/hash_set.hpp"
#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/runtime.hpp"

namespace tricount::core {

namespace {

constexpr int kTagU = 111;
constexpr int kTagL = 112;

using graph::TriangleCount;

/// Accumulating kernel: every closed triangle credits j (task row), i
/// (task entry), and k (closing vertex) in global *new-id* space.
void accumulate_blocks(const BlockCsr& tasks, const BlockCsr& ublock,
                       const BlockCsr& lblock, const Config& config, int q,
                       int x, int y, int z,
                       hashmap::VertexHashSet& scratch,
                       std::vector<TriangleCount>& acc,
                       TriangleCount& local_total) {
  const auto qv = static_cast<VertexId>(q);
  const auto xv = static_cast<VertexId>(x);
  const auto yv = static_cast<VertexId>(y);
  const auto zv = static_cast<VertexId>(z);
  // The accumulator needs the closing vertex of every match (to credit
  // it), so it keeps its own two-kernel loop: merge when the policy
  // forces it, the hash path otherwise.
  const bool use_map = config.kernel != kernels::KernelPolicy::kMerge;

  auto process_row = [&](VertexId r) {
    const auto task_cols = tasks.row(r);
    if (task_cols.empty()) return;
    const auto urow = ublock.row(r);
    if (urow.empty()) return;
    if (use_map) scratch.build(urow, config.modified_hashing);
    const VertexId umin = urow.front();
    const VertexId j_global = r * qv + xv;

    for (const VertexId e : task_cols) {
      if (e >= lblock.num_local_rows()) continue;
      const auto lrow = lblock.row(e);
      if (lrow.empty()) continue;
      const VertexId i_global = e * qv + yv;

      auto credit = [&](VertexId t) {
        const VertexId k_global = t * qv + zv;
        ++acc[j_global];
        ++acc[i_global];
        ++acc[k_global];
        ++local_total;
      };

      if (use_map) {
        for (std::size_t at = lrow.size(); at-- > 0;) {
          const VertexId t = lrow[at];
          if (config.backward_early_exit && t < umin) break;
          if (scratch.contains(t)) credit(t);
        }
      } else {
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < urow.size() && b < lrow.size()) {
          if (urow[a] == lrow[b]) {
            credit(urow[a]);
            ++a;
            ++b;
          } else if (urow[a] < lrow[b]) {
            ++a;
          } else {
            ++b;
          }
        }
      }
    }
  };

  if (config.doubly_sparse) {
    for (const VertexId r : tasks.nonempty()) process_row(r);
  } else {
    for (VertexId r = 0; r < tasks.num_local_rows(); ++r) process_row(r);
  }
}

BlockCsr blob_shift(mpisim::Comm& comm, BlockCsr block, int dest, int src,
                    int tag) {
  const std::vector<std::byte> blob = block.to_blob();
  mpisim::Message m = comm.sendrecv_bytes(
      dest, tag, std::span<const std::byte>(blob), src, tag);
  return BlockCsr::from_blob(m.payload);
}

}  // namespace

double PerVertexResult::local_clustering(graph::VertexId v,
                                         graph::EdgeIndex degree) const {
  if (degree < 2) return 0.0;
  const double possible =
      static_cast<double>(degree) * static_cast<double>(degree - 1) / 2.0;
  return static_cast<double>(counts.at(v)) / possible;
}

PerVertexResult count_per_vertex_2d(const graph::EdgeList& graph, int ranks,
                                    const RunOptions& options) {
  if (mpisim::perfect_square_root(ranks) == 0) {
    throw std::invalid_argument(
        "count_per_vertex_2d: rank count must be a perfect square");
  }
  PerVertexResult result;
  result.ranks = ranks;
  result.counts.assign(graph.num_vertices, 0);

  mpisim::run_world(ranks, [&](mpisim::Comm& comm) {
    mpisim::Cart2D grid(comm);
    const int p = comm.size();
    const int q = grid.q();
    const auto pv = static_cast<VertexId>(p);
    const VertexId n = graph.num_vertices;

    const LocalSlice input = block_slice_from_edges(graph, comm.rank(), p);
    const CyclicSlice cyclic = cyclic_redistribute(comm, input);
    const RelabeledSlice relabeled = degree_relabel(comm, cyclic);
    Blocks blocks = scatter_2d(grid, relabeled, options.config.enumeration);

    // --- accumulate over Cannon shifts in new-id space ------------------
    std::vector<TriangleCount> acc(n, 0);
    hashmap::VertexHashSet scratch;
    TriangleCount local_total = 0;
    for (int s = 0; s < q; ++s) {
      const int z = (grid.row() + grid.col() + s) % q;
      accumulate_blocks(blocks.tasks, blocks.ublock, blocks.lblock,
                        options.config, q, grid.row(), grid.col(), z, scratch,
                        acc, local_total);
      if (s + 1 < q) {
        blocks.ublock = blob_shift(comm, std::move(blocks.ublock),
                                   grid.left(), grid.right(), kTagU);
        blocks.lblock = blob_shift(comm, std::move(blocks.lblock), grid.up(),
                                   grid.down(), kTagL);
      }
    }
    const TriangleCount total = mpisim::allreduce_sum(comm, local_total);

    // --- reduce per-vertex credits to the cyclic owner of each new id ---
    std::vector<std::vector<VertexId>> credit_out(static_cast<std::size_t>(p));
    for (VertexId v = 0; v < n; ++v) {
      if (acc[v] == 0) continue;
      if (acc[v] > std::numeric_limits<VertexId>::max()) {
        // Per-rank per-vertex credits travel as 32-bit values; > 4e9
        // triangles on one vertex from one rank is outside this
        // simulator's scale by orders of magnitude.
        throw std::overflow_error("count_per_vertex_2d: credit overflow");
      }
      auto& bucket = credit_out[v % pv];
      bucket.push_back(v);
      bucket.push_back(static_cast<VertexId>(acc[v]));
    }
    const auto credit_in = mpisim::alltoallv(comm, credit_out);
    // owned_new[k] = triangles of new id (rank + k*p).
    std::vector<TriangleCount> owned_new(
        cyclic_row_count(n, p, comm.rank()), 0);
    for (const auto& bucket : credit_in) {
      for (std::size_t at = 0; at + 1 < bucket.size(); at += 2) {
        owned_new[bucket[at] / pv] += bucket[at + 1];
      }
    }

    // --- translate back to original ids ---------------------------------
    // This rank owns the *old* ids congruent to its rank (cyclic); it
    // knows each one's new id and asks the new id's owner for the count.
    std::vector<std::vector<VertexId>> ask(static_cast<std::size_t>(p));
    for (const VertexId w : relabeled.new_ids) {
      ask[w % pv].push_back(w);
    }
    const auto asked = mpisim::alltoallv(comm, ask);
    std::vector<std::vector<VertexId>> reply(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      for (const VertexId w : asked[static_cast<std::size_t>(r)]) {
        reply[static_cast<std::size_t>(r)].push_back(
            static_cast<VertexId>(owned_new[w / pv]));
      }
    }
    const auto replies = mpisim::alltoallv(comm, reply);
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for (std::size_t k = 0; k < relabeled.new_ids.size(); ++k) {
      const VertexId w = relabeled.new_ids[k];
      const auto owner = static_cast<std::size_t>(w % pv);
      const VertexId old_id = cyclic.global_id(static_cast<VertexId>(k));
      // Disjoint slots across ranks; thread-join publishes the writes.
      result.counts[old_id] = replies[owner][cursor[owner]++];
    }
    if (comm.rank() == 0) result.total_triangles = total;
  });

  return result;
}

ClusteringStats clustering_stats_2d(const graph::EdgeList& graph, int ranks,
                                    const RunOptions& options) {
  const PerVertexResult per_vertex =
      count_per_vertex_2d(graph, ranks, options);
  const std::vector<graph::EdgeIndex> degrees = graph::degrees(graph);

  ClusteringStats stats;
  stats.triangles = per_vertex.total_triangles;
  double clustering_sum = 0.0;
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    const graph::EdgeIndex d = degrees[v];
    stats.wedges += d * (d - 1) / 2;
    if (d >= 2) {
      clustering_sum += per_vertex.local_clustering(v, d);
    }
  }
  if (stats.wedges > 0) {
    stats.transitivity = 3.0 * static_cast<double>(stats.triangles) /
                         static_cast<double>(stats.wedges);
  }
  if (graph.num_vertices > 0) {
    stats.average_local_clustering =
        clustering_sum / static_cast<double>(graph.num_vertices);
  }
  return stats;
}

}  // namespace tricount::core
