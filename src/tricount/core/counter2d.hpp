// The triangle counting phase (paper §5.1): √p compute steps interleaved
// with Cannon-pattern shifts of the U and L blocks, followed by a global
// reduction of the per-rank counts.
//
// At step s, rank (x,y) holds U_{x,z} and L_{z,y} with z = (x+y+s) mod q
// (Equation 6); blocks arrive pre-aligned from preprocessing. The compute
// step runs the map-based (or list-based) intersection kernel over the
// rank's task block; then U shifts one column left and L one row up.
#pragma once

#include "tricount/core/block_matrix.hpp"
#include "tricount/core/config.hpp"
#include "tricount/core/instrumentation.hpp"
#include "tricount/core/preprocess.hpp"
#include "tricount/graph/types.hpp"
#include "tricount/kernels/intersect.hpp"
#include "tricount/mpisim/cart2d.hpp"

namespace tricount::core {

using graph::TriangleCount;

struct CountOutput {
  /// Triangles found by this rank's tasks (pre-reduction).
  TriangleCount local_triangles = 0;
  /// Global total (allreduce over ranks).
  TriangleCount total_triangles = 0;
  /// One sample per shift: the shift's compute plus its communication.
  std::vector<PhaseSample> shifts;
  KernelCounters kernel;
};

/// One compute step: intersects every task (r, e) in `tasks` against the
/// currently-held U and L blocks. For the ⟨j,i,k⟩ scheme r is the
/// higher-degree endpoint j (its U row gets hashed) and e is i (its L row
/// is looked up); for ⟨i,j,k⟩ the roles are r = i, e = j. The kernel each
/// task pair runs is chosen by `config.kernel` (docs/kernels.md). Exposed
/// separately for unit testing.
TriangleCount intersect_blocks(const BlockCsr& tasks, const BlockCsr& ublock,
                               const BlockCsr& lblock, const Config& config,
                               kernels::IntersectScratch& scratch,
                               KernelCounters& counters);

/// Runs the full counting phase. Consumes (shifts away) the U/L blocks.
CountOutput cannon_count(mpisim::Cart2D& grid, Blocks blocks,
                         const Config& config);

}  // namespace tricount::core
