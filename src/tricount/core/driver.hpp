// Public entry points: run the full distributed pipeline (input slice ->
// preprocessing -> Cannon counting -> reduction) on a simulated world of
// p ranks and return the count plus every measurement the evaluation
// section needs.
//
// This is the API the examples and benchmarks use:
//
//   auto result = tricount::core::count_triangles_2d(graph, /*ranks=*/16);
//   std::cout << result.triangles << "\n";
//   std::cout << result.total_modeled_seconds() << "\n";
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tricount/core/config.hpp"
#include "tricount/core/counter2d.hpp"
#include "tricount/core/instrumentation.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/graph/generators.hpp"
#include "tricount/mpisim/fault.hpp"
#include "tricount/util/cost_model.hpp"

namespace tricount::core {

struct RunOptions {
  Config config;
  util::AlphaBetaModel model;
  /// Check block structural invariants after preprocessing (tests).
  bool validate_blocks = false;
  /// Fault injector for the run (chaos subsystem, docs/chaos.md); null
  /// keeps the fault-free fast path bit-identical to pre-chaos builds.
  std::shared_ptr<const mpisim::FaultInjector> chaos;
  /// Hang-watchdog budget forwarded to mpisim (0 = auto, <0 = off).
  double watchdog_seconds = 0.0;
};

/// One rank's CETRIC tallies (src/tricount/cetric/, docs/cetric.md):
/// the local-vs-cut triangle classification plus the cut-wedge and
/// ghost-exchange traffic the communication-avoiding claims rest on.
struct CetricRankCounters {
  std::uint64_t local_triangles = 0;
  std::uint64_t cut_triangles = 0;
  std::uint64_t cut_wedges_sent = 0;
  std::uint64_t cut_wedge_messages_sent = 0;
  std::uint64_t cut_wedge_bytes_sent = 0;
  std::uint64_t ghost_lists_fetched = 0;
  std::uint64_t ghost_list_entries = 0;
};

struct RunResult {
  graph::TriangleCount triangles = 0;
  int ranks = 0;
  /// Cannon/SUMMA grid edge; 0 for 1D-partitioned algorithms (cetric).
  int grid_q = 0;
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;
  util::AlphaBetaModel model;
  /// Preprocessing superstep names, in pipeline order (same on all ranks).
  std::vector<std::string> step_names;
  std::vector<RankStats> per_rank;
  /// Whole-run traffic counters per rank (totals + collective split).
  std::vector<mpisim::PerfCounters> per_rank_counters;
  /// The p×p (source, dest) traffic matrix recorded by mpisim.
  mpisim::CommMatrix comm_matrix;
  /// True when a fault injector was installed for this run.
  bool chaos_enabled = false;
  /// True when the run used comm/compute overlap (Config::overlap); the
  /// overlap metrics block is emitted only in this case so overlap-off
  /// artifacts stay byte-identical to pre-overlap builds.
  bool overlap_enabled = false;
  /// Per-rank chaos tallies (all zero unless chaos_enabled).
  std::vector<mpisim::ChaosCounters> per_rank_chaos;
  /// Which counting algorithm produced this result ("2d" or "cetric").
  /// Artifacts serialize the key only when it differs from "2d", so
  /// pre-cetric baselines stay byte-identical.
  std::string algorithm = "2d";
  /// Per-rank CETRIC tallies (empty unless algorithm == "cetric").
  std::vector<CetricRankCounters> per_rank_cetric;

  mpisim::ChaosCounters total_chaos() const;
  CetricRankCounters total_cetric() const;

  // --- derived metrics (see instrumentation.hpp for the model) ----------

  /// Per-rank samples of one preprocessing superstep / one shift.
  std::vector<PhaseSample> step_samples(std::size_t step_index) const;
  std::vector<PhaseSample> shift_samples(std::size_t shift_index) const;
  std::size_t num_shifts() const;

  /// Modeled parallel times (the reproduction's analogue of the paper's
  /// ppt / tct / overall columns).
  double pre_modeled_seconds() const;
  double tc_modeled_seconds() const;
  double total_modeled_seconds() const { return pre_modeled_seconds() + tc_modeled_seconds(); }

  /// Modeled communication-only time per phase (Figure 3).
  double pre_modeled_comm_seconds() const;
  double tc_modeled_comm_seconds() const;

  /// Total abstract operations per phase (Figure 2).
  std::uint64_t pre_ops() const;
  std::uint64_t tc_ops() const;

  /// Kernel counters summed over ranks (Table 4, §7.1 probes).
  KernelCounters total_kernel() const;

  /// Max/avg compute seconds of shift `i` across ranks (Table 3).
  double shift_max_compute(std::size_t shift_index) const;
  double shift_avg_compute(std::size_t shift_index) const;
};

/// Counts triangles of a replicated, simplified edge list on a simulated
/// world of `ranks` ranks (must be a perfect square).
RunResult count_triangles_2d(const graph::EdgeList& graph, int ranks,
                             const RunOptions& options = {});

/// Same, from a prebuilt symmetric CSR — cheaper input slicing when the
/// same graph is swept over many grid sizes (the bench harness path).
RunResult count_triangles_2d(const graph::Csr& csr, int ranks,
                             const RunOptions& options = {});

/// Same, but the graph is RMAT-generated inside the run, distributed, as
/// in the paper's synthetic-dataset experiments.
RunResult count_triangles_2d_rmat(const graph::RmatParams& params, int ranks,
                                  const RunOptions& options = {});

}  // namespace tricount::core
