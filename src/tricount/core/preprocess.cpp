#include "tricount/core/preprocess.hpp"

#include <algorithm>
#include <stdexcept>

#include "tricount/mpisim/collectives.hpp"
#include "tricount/obs/trace.hpp"
#include "tricount/util/prefix.hpp"

namespace tricount::core {

RelabeledSlice degree_relabel(mpisim::Comm& comm, const CyclicSlice& slice) {
  const int p = slice.p;
  const auto pv = static_cast<VertexId>(p);

  // --- counting sort of the degree distribution (§5.4's two scans, a
  // max-reduction, and a d_max-long prefix over ranks) -------------------
  EdgeIndex local_max = 0;
  for (const auto& list : slice.adj) {
    local_max = std::max(local_max, static_cast<EdgeIndex>(list.size()));
  }
  const EdgeIndex dmax = mpisim::allreduce_max(comm, local_max);

  std::vector<std::uint64_t> histogram(static_cast<std::size_t>(dmax) + 1, 0);
  for (const auto& list : slice.adj) ++histogram[list.size()];

  // lower_counts[d] = same-degree vertices owned by lower ranks;
  // global[d] = total vertices of degree d.
  std::vector<std::uint64_t> inclusive = histogram;
  const std::vector<std::uint64_t> lower_counts = mpisim::scan_and_exscan(
      comm, inclusive, std::plus<std::uint64_t>(), std::uint64_t{0});
  std::vector<std::uint64_t> global = histogram;
  mpisim::allreduce(comm, global, std::plus<std::uint64_t>());
  util::exclusive_prefix_sum(global);  // global[d] = first position of degree d

  RelabeledSlice out;
  out.num_vertices = slice.num_vertices;
  out.rank = slice.rank;
  out.p = p;
  out.global_max_degree = dmax;
  out.new_ids.resize(slice.adj.size());
  {
    std::vector<std::uint64_t> within(static_cast<std::size_t>(dmax) + 1, 0);
    for (std::size_t k = 0; k < slice.adj.size(); ++k) {
      const std::size_t d = slice.adj[k].size();
      out.new_ids[k] =
          static_cast<VertexId>(global[d] + lower_counts[d] + within[d]++);
    }
  }

  // --- relabel neighbours: ask each owner for its vertices' new ids -----
  // (§5.3: "the position of the adjacent vertex is not locally available.
  // Thus, this requires us to perform a communication step with all
  // nodes.")
  std::vector<std::vector<VertexId>> requests(static_cast<std::size_t>(p));
  for (const auto& list : slice.adj) {
    for (const VertexId u : list) {
      requests[u % pv].push_back(u);
    }
  }
  for (auto& r : requests) {
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
  }
  const auto incoming_requests = mpisim::alltoallv(comm, requests);
  std::vector<std::vector<VertexId>> answers(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& asked = incoming_requests[static_cast<std::size_t>(r)];
    auto& reply = answers[static_cast<std::size_t>(r)];
    reply.reserve(asked.size());
    for (const VertexId u : asked) {
      if (u % pv != static_cast<VertexId>(slice.rank)) {
        throw std::runtime_error("degree_relabel: misrouted id request");
      }
      reply.push_back(out.new_ids[u / pv]);
    }
  }
  const auto responses = mpisim::alltoallv(comm, answers);

  auto translate = [&](VertexId u) {
    const auto owner = static_cast<std::size_t>(u % pv);
    const auto& req = requests[owner];
    const auto it = std::lower_bound(req.begin(), req.end(), u);
    return responses[owner][static_cast<std::size_t>(it - req.begin())];
  };

  out.adj.resize(slice.adj.size());
  for (std::size_t k = 0; k < slice.adj.size(); ++k) {
    out.adj[k].reserve(slice.adj[k].size());
    for (const VertexId u : slice.adj[k]) {
      out.adj[k].push_back(translate(u));
    }
  }
  return out;
}

RelabeledSlice identity_relabel(mpisim::Comm& comm,
                                const CyclicSlice& slice) {
  RelabeledSlice out;
  out.num_vertices = slice.num_vertices;
  out.rank = slice.rank;
  out.p = slice.p;
  out.new_ids.resize(slice.adj.size());
  for (std::size_t k = 0; k < slice.adj.size(); ++k) {
    out.new_ids[k] = slice.global_id(static_cast<VertexId>(k));
  }
  out.adj = slice.adj;
  EdgeIndex local_max = 0;
  for (const auto& list : slice.adj) {
    local_max = std::max(local_max, static_cast<EdgeIndex>(list.size()));
  }
  out.global_max_degree = mpisim::allreduce_max(comm, local_max);
  return out;
}

Blocks scatter_2d(mpisim::Cart2D& grid, const RelabeledSlice& slice,
                  Enumeration enumeration) {
  mpisim::Comm& comm = grid.comm();
  const int q = grid.q();
  const auto qv = static_cast<VertexId>(q);
  const std::size_t p = static_cast<std::size_t>(comm.size());

  std::vector<std::vector<LocalEntry>> u_out(p);
  std::vector<std::vector<LocalEntry>> l_out(p);
  std::vector<std::vector<LocalEntry>> t_out(p);

  for (std::size_t k = 0; k < slice.adj.size(); ++k) {
    const VertexId w = slice.new_ids[k];
    const int wx = static_cast<int>(w % qv);
    const VertexId wloc = w / qv;
    for (const VertexId u : slice.adj[k]) {
      const int ux = static_cast<int>(u % qv);
      const VertexId uloc = u / qv;
      if (u > w) {
        // After degree ordering, id order IS degree order (§5.3), so u > w
        // places u in w's upper-triangle adjacency.
        //
        // U_{x,z} entry (row w, col u), x = w%q, z = u%q. Sent directly to
        // Cannon's aligned start: U_{x,z} begins at rank (x, (z-x) mod q).
        const int u_dest = grid.rank_of(wx, (ux - wx + q) % q);
        u_out[static_cast<std::size_t>(u_dest)].push_back(LocalEntry{wloc, uloc});
        // L_{z,y} entry (stored column-major: row w, col u), z = u%q,
        // y = w%q. Aligned start: rank ((z-y) mod q, y).
        const int l_dest = grid.rank_of((ux - wx + q) % q, wx);
        l_out[static_cast<std::size_t>(l_dest)].push_back(LocalEntry{wloc, uloc});
        if (enumeration == Enumeration::kIJK) {
          // Task (i=w, j=u) from the non-zeros of U -> rank (w%q, u%q).
          const int t_dest = grid.rank_of(wx, ux);
          t_out[static_cast<std::size_t>(t_dest)].push_back(LocalEntry{wloc, uloc});
        }
      } else if (u < w) {
        if (enumeration == Enumeration::kJIK) {
          // Task (j=w, i=u) from the non-zeros of L -> rank (w%q, u%q).
          const int t_dest = grid.rank_of(wx, ux);
          t_out[static_cast<std::size_t>(t_dest)].push_back(LocalEntry{wloc, uloc});
        }
      }
      // u == w cannot happen: new ids form a permutation and self-loops
      // were removed at ingestion.
    }
  }

  auto u_in = mpisim::alltoallv(comm, u_out);
  auto l_in = mpisim::alltoallv(comm, l_out);
  auto t_in = mpisim::alltoallv(comm, t_out);

  auto flatten = [](std::vector<std::vector<LocalEntry>> buckets) {
    std::vector<LocalEntry> flat;
    std::size_t total = 0;
    for (const auto& b : buckets) total += b.size();
    flat.reserve(total);
    for (auto& b : buckets) {
      flat.insert(flat.end(), b.begin(), b.end());
    }
    return flat;
  };

  Blocks blocks;
  const VertexId u_rows = cyclic_row_count(slice.num_vertices, q, grid.row());
  const VertexId l_rows = cyclic_row_count(slice.num_vertices, q, grid.col());
  blocks.ublock = BlockCsr::from_entries(u_rows, flatten(std::move(u_in)));
  blocks.lblock = BlockCsr::from_entries(l_rows, flatten(std::move(l_in)));
  blocks.tasks = BlockCsr::from_entries(u_rows, flatten(std::move(t_in)));
  return blocks;
}

PreprocessOutput preprocess(mpisim::Cart2D& grid, const LocalSlice& input,
                            const Config& config) {
  mpisim::Comm& comm = grid.comm();
  PreprocessOutput out;
  out.num_vertices = input.num_vertices;
  PhaseTracker tracker(comm);

  CyclicSlice cyclic = [&] {
    obs::ScopedSpan span("redistribute", "pre");
    return cyclic_redistribute(comm, input);
  }();
  {
    PhaseSample s = tracker.cut();
    for (const auto& list : cyclic.adj) s.ops += list.size();
    out.steps.emplace_back("redistribute", s);
  }

  RelabeledSlice relabeled = [&] {
    obs::ScopedSpan span("degree_order", "pre");
    return config.degree_ordering ? degree_relabel(comm, cyclic)
                                  : identity_relabel(comm, cyclic);
  }();
  {
    PhaseSample s = tracker.cut();
    for (const auto& list : relabeled.adj) s.ops += list.size();
    s.ops += relabeled.global_max_degree;
    out.steps.emplace_back("degree_order", s);
  }

  {
    obs::ScopedSpan span("scatter_2d", "pre");
    out.blocks = scatter_2d(grid, relabeled, config.enumeration);
  }
  {
    PhaseSample s = tracker.cut();
    s.ops += 2 * (out.blocks.ublock.num_entries() +
                  out.blocks.lblock.num_entries() +
                  out.blocks.tasks.num_entries());
    out.steps.emplace_back("scatter_2d", s);
  }

  {
    obs::ScopedSpan span("edge_count", "pre");
    out.num_edges =
        mpisim::allreduce_sum(comm, out.blocks.ublock.num_entries());
  }
  {
    PhaseSample s = tracker.cut();
    out.steps.emplace_back("edge_count", s);
  }
  return out;
}

}  // namespace tricount::core
