// BlockCsr: the per-processor storage for one 2D-cyclic block of U, L, or
// the task matrix (paper §5.1, §5.2).
//
// Under the cyclic distribution, rank row x owns matrix rows {x, x+q,
// x+2q, ...}; a row's local index is its global id ÷ q (the paper's
// "transformed index v ÷ √p"). Column ids are stored transformed the same
// way (global ÷ q): within one block every column id is congruent to the
// block's column-block index mod q, so the transform is a bijection and
// set intersection on transformed ids is equivalent to intersection on
// global ids — while making hash keys dense (crucial for the masked
// hashing routine) and halving comparisons.
//
// The structure is doubly-compressed (Buluç & Gilbert): alongside the CSR
// arrays it keeps the list of non-empty local rows, which the §5.2
// "doubly sparse traversal" iterates instead of all n/q rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tricount/graph/types.hpp"
#include "tricount/util/blob.hpp"

namespace tricount::core {

using graph::VertexId;

/// One (row, col) non-zero in local (transformed) coordinates.
struct LocalEntry {
  VertexId row = 0;  ///< global id ÷ q
  VertexId col = 0;  ///< global id ÷ q

  friend bool operator==(const LocalEntry&, const LocalEntry&) = default;
  friend auto operator<=>(const LocalEntry&, const LocalEntry&) = default;
};

/// Number of global row ids in [0, n) congruent to `residue` mod q.
VertexId cyclic_row_count(VertexId n, int q, int residue);

class BlockCsr {
 public:
  BlockCsr() = default;

  /// Builds from unordered entries. Rows outside [0, num_local_rows) are
  /// an error. Column ids within each row are sorted ascending and
  /// deduplicated.
  static BlockCsr from_entries(VertexId num_local_rows,
                               std::vector<LocalEntry> entries);

  VertexId num_local_rows() const { return num_local_rows_; }
  std::uint64_t num_entries() const { return adj_.size(); }

  std::span<const VertexId> row(VertexId local_row) const {
    return {adj_.data() + xadj_[local_row], adj_.data() + xadj_[local_row + 1]};
  }

  VertexId row_degree(VertexId local_row) const {
    return static_cast<VertexId>(xadj_[local_row + 1] - xadj_[local_row]);
  }

  /// Local row ids with at least one entry (the DCSR row list).
  const std::vector<VertexId>& nonempty() const { return nonempty_; }

  const std::vector<std::uint64_t>& xadj() const { return xadj_; }
  const std::vector<VertexId>& adj() const { return adj_; }

  /// Largest row degree (used to size the intersection hash map once).
  VertexId max_row_degree() const;

  /// §5.2 blob form: one contiguous byte buffer containing all arrays.
  std::vector<std::byte> to_blob() const;
  static BlockCsr from_blob(std::span<const std::byte> blob);

  /// Structural invariants (monotone xadj, sorted rows, consistent
  /// nonempty list). Throws std::runtime_error on violation.
  void validate() const;

  friend bool operator==(const BlockCsr&, const BlockCsr&) = default;

 private:
  VertexId num_local_rows_ = 0;
  std::vector<std::uint64_t> xadj_{0};
  std::vector<VertexId> adj_;
  std::vector<VertexId> nonempty_;
};

}  // namespace tricount::core
