#include "tricount/core/artifacts.hpp"

#include <utility>
#include <vector>

#include "tricount/obs/analysis.hpp"
#include "tricount/obs/build_info.hpp"

namespace tricount::core {

namespace {

/// One superstep of the run: its name, phase tag, and per-rank samples.
struct Superstep {
  std::string name;
  const char* phase;  // "pre" or "tc"
  std::vector<PhaseSample> samples;
};

std::vector<Superstep> supersteps_of(const RunResult& result) {
  std::vector<Superstep> steps;
  for (std::size_t s = 0; s < result.step_names.size(); ++s) {
    steps.push_back({result.step_names[s], "pre", result.step_samples(s)});
  }
  for (std::size_t s = 0; s < result.num_shifts(); ++s) {
    steps.push_back(
        {"shift " + std::to_string(s), "tc", result.shift_samples(s)});
  }
  return steps;
}

/// The analyzer-side view of this run, built without a JSON round-trip so
/// the inline report (`count --analyze`) and the trace annotations see
/// bit-identical numbers to a saved-then-reloaded artifact.
obs::analysis::RunReport report_of(const RunResult& result) {
  obs::analysis::RunReport report;
  report.ranks = result.ranks;
  report.grid_q = result.grid_q;
  report.algorithm = result.algorithm;
  report.vertices = static_cast<std::uint64_t>(result.num_vertices);
  report.edges = static_cast<std::uint64_t>(result.num_edges);
  report.triangles = static_cast<std::uint64_t>(result.triangles);
  report.model = result.model;
  for (const Superstep& step : supersteps_of(result)) {
    const PhaseBreakdown b = breakdown(step.samples);
    obs::analysis::Step out;
    out.name = step.name;
    out.phase = step.phase;
    out.overlapped = b.overlapped;
    out.declared_seconds = b.modeled_seconds(result.model);
    out.declared_comm_seconds = b.modeled_comm_seconds(result.model);
    for (const PhaseSample& sample : step.samples) {
      out.ranks.push_back({sample.compute_cpu_seconds, sample.comm_cpu_seconds,
                           sample.messages, sample.bytes, sample.ops});
    }
    report.steps.push_back(std::move(out));
  }
  report.metrics = build_run_snapshot(result);
  return report;
}

}  // namespace

obs::analysis::RunReport build_run_report(const RunResult& result) {
  return report_of(result);
}

obs::Trace build_run_trace(const RunResult& result) {
  obs::Trace trace;
  trace.set_thread_name(0, "modeled");
  for (int r = 0; r < result.ranks; ++r) {
    trace.set_thread_name(r + 1, "rank " + std::to_string(r));
  }

  // Critical-path attribution for the annotations: which rank bounds each
  // superstep and how much slack every other rank has in its window.
  const obs::analysis::Analysis analysis =
      obs::analysis::analyze(report_of(result));

  double t_seconds = 0.0;  // aligned superstep start, same on every rank
  std::size_t step_index = 0;
  for (const Superstep& step : supersteps_of(result)) {
    const PhaseBreakdown b = breakdown(step.samples);
    const double step_seconds = b.modeled_seconds(result.model);
    const obs::analysis::StepAnalysis& sa = analysis.steps[step_index++];
    trace.add_complete(
        0, step.name, step.phase, t_seconds * 1e6, step_seconds * 1e6,
        {{"max_compute_seconds", b.max_compute_seconds},
         {"avg_compute_seconds", b.avg_compute_seconds},
         {"max_messages", static_cast<double>(b.max_messages)},
         {"max_bytes", static_cast<double>(b.max_bytes)},
         {"total_bytes", static_cast<double>(b.total_bytes)},
         {"bounding_rank", static_cast<double>(sa.bounding_rank)},
         {"imbalance", sa.imbalance}});
    for (std::size_t r = 0; r < step.samples.size(); ++r) {
      const PhaseSample& sample = step.samples[r];
      const int tid = static_cast<int>(r) + 1;
      const bool straggler = sa.bounding_rank == static_cast<int>(r);
      trace.add_complete(tid, step.name, "compute", t_seconds * 1e6,
                         sample.compute_cpu_seconds * 1e6,
                         {{"ops", static_cast<double>(sample.ops)},
                          {"slack_seconds", sa.slack_seconds[r]},
                          {"straggler", straggler ? 1.0 : 0.0}});
      const double comm_seconds =
          result.model.cost(sample.messages, sample.bytes) +
          sample.comm_cpu_seconds;
      if (comm_seconds > 0.0) {
        trace.add_complete(
            tid, step.name + " comm", "comm",
            (t_seconds + sample.compute_cpu_seconds) * 1e6, comm_seconds * 1e6,
            {{"messages", static_cast<double>(sample.messages)},
             {"bytes", static_cast<double>(sample.bytes)},
             {"slack_seconds", sa.slack_seconds[r]},
             {"straggler", straggler ? 1.0 : 0.0}});
      }
    }
    t_seconds += step_seconds;
  }
  return trace;
}

obs::Snapshot build_run_snapshot(const RunResult& result) {
  obs::Registry registry;

  const KernelCounters kernel = result.total_kernel();
  registry.counter("kernel.intersection_tasks").set(kernel.intersection_tasks);
  registry.counter("kernel.lookups").set(kernel.lookups);
  registry.counter("kernel.hits").set(kernel.hits);
  registry.counter("kernel.probes").set(kernel.probes);
  registry.counter("kernel.hash_builds").set(kernel.hash_builds);
  registry.counter("kernel.direct_builds").set(kernel.direct_builds);
  registry.counter("kernel.rows_visited").set(kernel.rows_visited);
  registry.counter("kernel.early_exits").set(kernel.early_exits);
  registry.counter("kernel.merge_calls").set(kernel.merge_calls);
  registry.counter("kernel.merge_steps").set(kernel.merge_steps);
  registry.counter("kernel.galloping_calls").set(kernel.galloping_calls);
  registry.counter("kernel.galloping_steps").set(kernel.galloping_steps);
  registry.counter("kernel.bitmap_calls").set(kernel.bitmap_calls);
  registry.counter("kernel.bitmap_tests").set(kernel.bitmap_tests);
  registry.counter("kernel.bitmap_builds").set(kernel.bitmap_builds);
  registry.counter("kernel.hash_calls").set(kernel.hash_calls);
  registry.counter("kernel.hash_lookups").set(kernel.hash_lookups);

  registry.gauge("phase.pre.modeled_seconds").set(result.pre_modeled_seconds());
  registry.gauge("phase.pre.modeled_comm_seconds")
      .set(result.pre_modeled_comm_seconds());
  registry.gauge("phase.tc.modeled_seconds").set(result.tc_modeled_seconds());
  registry.gauge("phase.tc.modeled_comm_seconds")
      .set(result.tc_modeled_comm_seconds());
  registry.gauge("phase.total.modeled_seconds")
      .set(result.total_modeled_seconds());
  registry.counter("phase.pre.ops").set(result.pre_ops());
  registry.counter("phase.tc.ops").set(result.tc_ops());

  mpisim::PerfCounters traffic;
  for (const mpisim::PerfCounters& c : result.per_rank_counters) traffic += c;
  registry.counter("comm.messages_sent").set(traffic.messages_sent);
  registry.counter("comm.bytes_sent").set(traffic.bytes_sent);
  registry.counter("comm.collective_messages_sent")
      .set(traffic.collective_messages_sent);
  registry.counter("comm.collective_bytes_sent")
      .set(traffic.collective_bytes_sent);
  registry.counter("comm.user_messages_sent").set(traffic.user_messages_sent());
  registry.counter("comm.user_bytes_sent").set(traffic.user_bytes_sent());
  registry.gauge("comm.cpu_seconds").set(traffic.comm_cpu_seconds);

  // Distribution of per-(rank, shift) compute times — the load-imbalance
  // signal of Table 3, as a histogram instead of a table.
  obs::Histogram& shift_compute =
      registry.histogram("tc.shift_compute_seconds", /*scale=*/1e-6);
  for (const RankStats& stats : result.per_rank) {
    for (const PhaseSample& s : stats.shifts) {
      shift_compute.observe(s.compute_cpu_seconds);
    }
  }

  // Overlap tallies appear only on overlapped runs, so overlap-off
  // artifacts stay byte-comparable to the checked-in baselines
  // (tests/perf_gate.cmake). Efficiency = hidden / network per superstep.
  if (result.overlap_enabled) {
    double hidden_total = 0.0;
    double exposed_total = 0.0;
    std::uint64_t overlap_steps = 0;
    obs::Histogram& efficiency =
        registry.histogram("tc.overlap.step_efficiency", /*scale=*/1e-3);
    for (std::size_t s = 0; s < result.num_shifts(); ++s) {
      const PhaseBreakdown b = breakdown(result.shift_samples(s));
      if (!b.overlapped) continue;
      overlap_steps += 1;
      const double network = result.model.cost(b.max_messages, b.max_bytes);
      const double hidden = b.hidden_seconds(result.model);
      hidden_total += hidden;
      exposed_total += network - hidden;
      if (network > 0.0) efficiency.observe(hidden / network);
    }
    registry.counter("tc.overlap.steps").set(overlap_steps);
    registry.gauge("tc.overlap.hidden_seconds").set(hidden_total);
    registry.gauge("tc.overlap.exposed_network_seconds").set(exposed_total);
  }

  // Cetric's local/cut classification and wedge-traffic tallies, present
  // only on cetric runs: 2D artifacts stay byte-identical to the
  // checked-in baselines, and lint_metrics can reconcile these against
  // the comm-matrix user rows (all user traffic of a cetric run is
  // cut-wedge traffic).
  if (!result.per_rank_cetric.empty()) {
    const CetricRankCounters cet = result.total_cetric();
    registry.counter("tc.cetric.local_triangles").set(cet.local_triangles);
    registry.counter("tc.cetric.cut_triangles").set(cet.cut_triangles);
    registry.counter("tc.cetric.cut_wedges_sent").set(cet.cut_wedges_sent);
    registry.counter("tc.cetric.cut_wedge_messages_sent")
        .set(cet.cut_wedge_messages_sent);
    registry.counter("tc.cetric.cut_wedge_bytes_sent")
        .set(cet.cut_wedge_bytes_sent);
    registry.counter("tc.cetric.ghost_lists_fetched")
        .set(cet.ghost_lists_fetched);
    registry.counter("tc.cetric.ghost_list_entries")
        .set(cet.ghost_list_entries);
  }

  // Chaos tallies appear only on chaos runs, so fault-free artifacts stay
  // byte-comparable to pre-chaos baselines (tests/perf_gate.cmake).
  if (result.chaos_enabled) {
    const mpisim::ChaosCounters chaos = result.total_chaos();
    registry.counter("chaos.drops_injected").set(chaos.drops_injected);
    registry.counter("chaos.duplicates_injected").set(chaos.duplicates_injected);
    registry.counter("chaos.reorders_injected").set(chaos.reorders_injected);
    registry.counter("chaos.delays_injected").set(chaos.delays_injected);
    registry.gauge("chaos.delay_modeled_seconds").set(chaos.delay_modeled_seconds);
    registry.counter("chaos.acks_sent").set(chaos.acks_sent);
    registry.counter("chaos.retransmits").set(chaos.retransmits);
    registry.counter("chaos.duplicates_discarded").set(chaos.duplicates_discarded);
    registry.counter("chaos.out_of_order_stashed").set(chaos.out_of_order_stashed);
    registry.counter("chaos.crashes").set(chaos.crashes);
    registry.counter("chaos.recoveries").set(chaos.recoveries);
    registry.gauge("chaos.recovery_seconds").set(chaos.recovery_seconds);
    registry.counter("chaos.straggler_steps").set(chaos.straggler_steps);
    registry.gauge("chaos.straggler_injected_seconds")
        .set(chaos.straggler_injected_seconds);
  }

  return registry.snapshot();
}

obs::json::Value comm_matrix_to_json(const mpisim::CommMatrix& matrix,
                                     bool include_chaos) {
  using obs::json::Value;
  Value out = Value::object();
  out.set("size", matrix.size());
  std::vector<std::string> fields = {"user_messages", "user_bytes",
                                     "collective_messages",
                                     "collective_bytes"};
  if (include_chaos) {
    // Reliability overhead (retransmitted copies + acks) — emitted only
    // for chaos runs so fault-free artifacts stay byte-identical to
    // baselines written before the columns existed.
    fields.push_back("chaos_messages");
    fields.push_back("chaos_bytes");
  }
  for (const std::string& name : fields) {
    Value rows = Value::array();
    for (int s = 0; s < matrix.size(); ++s) {
      Value row = Value::array();
      for (int d = 0; d < matrix.size(); ++d) {
        const mpisim::CommCell& cell = matrix.at(s, d);
        if (name == "user_messages") row.push_back(cell.user_messages);
        else if (name == "user_bytes") row.push_back(cell.user_bytes);
        else if (name == "collective_messages") row.push_back(cell.collective_messages);
        else if (name == "collective_bytes") row.push_back(cell.collective_bytes);
        else if (name == "chaos_messages") row.push_back(cell.chaos_messages);
        else row.push_back(cell.chaos_bytes);
      }
      rows.push_back(std::move(row));
    }
    out.set(name, std::move(rows));
  }
  return out;
}

obs::json::Value build_run_metrics(const RunResult& result) {
  using obs::json::Value;
  Value root = Value::object();
  // v2 = v1 plus the per-kernel attribution counters (docs/kernels.md);
  // readers accept both.
  root.set("schema", "tricount.metrics.v2");
  // Build provenance travels at the top level, where diff_metrics ignores
  // unknown keys — artifacts stay comparable across builds.
  root.set("build", obs::build_info_json());

  Value run = Value::object();
  run.set("ranks", result.ranks);
  run.set("grid_q", result.grid_q);
  // The algorithm tag is written only for non-2D runs: artifacts written
  // before the key existed (all 2D) stay byte-identical, and readers
  // default a missing key to "2d".
  if (result.algorithm != "2d") run.set("algorithm", result.algorithm);
  run.set("vertices", static_cast<std::uint64_t>(result.num_vertices));
  run.set("edges", static_cast<std::uint64_t>(result.num_edges));
  run.set("triangles", static_cast<std::uint64_t>(result.triangles));
  Value model = Value::object();
  model.set("alpha_seconds", result.model.alpha_seconds);
  model.set("beta_seconds_per_byte", result.model.beta_seconds_per_byte);
  run.set("model", std::move(model));
  root.set("run", std::move(run));

  root.set("metrics", build_run_snapshot(result).to_json());

  Value steps = Value::array();
  for (const Superstep& step : supersteps_of(result)) {
    const PhaseBreakdown b = breakdown(step.samples);
    Value entry = Value::object();
    entry.set("phase", step.phase);
    entry.set("name", step.name);
    entry.set("modeled_seconds", b.modeled_seconds(result.model));
    entry.set("modeled_comm_seconds", b.modeled_comm_seconds(result.model));
    entry.set("max_compute_seconds", b.max_compute_seconds);
    entry.set("avg_compute_seconds", b.avg_compute_seconds);
    entry.set("max_messages", b.max_messages);
    entry.set("max_bytes", b.max_bytes);
    entry.set("total_bytes", b.total_bytes);
    entry.set("max_comm_cpu_seconds", b.max_comm_cpu_seconds);
    // Written only on overlapped runs: overlap-off artifacts must stay
    // byte-identical to baselines produced before the key existed.
    if (result.overlap_enabled) entry.set("overlapped", b.overlapped);
    Value rank_rows = Value::array();
    for (const PhaseSample& sample : step.samples) {
      Value row = Value::object();
      row.set("compute_seconds", sample.compute_cpu_seconds);
      row.set("comm_cpu_seconds", sample.comm_cpu_seconds);
      row.set("messages", sample.messages);
      row.set("bytes", sample.bytes);
      row.set("ops", sample.ops);
      rank_rows.push_back(std::move(row));
    }
    entry.set("per_rank", std::move(rank_rows));
    steps.push_back(std::move(entry));
  }
  root.set("steps", std::move(steps));

  root.set("comm_matrix", comm_matrix_to_json(result.comm_matrix,
                                              result.chaos_enabled));

  Value per_rank = Value::array();
  for (std::size_t r = 0; r < result.per_rank_counters.size(); ++r) {
    const mpisim::PerfCounters& c = result.per_rank_counters[r];
    Value entry = Value::object();
    entry.set("rank", static_cast<std::uint64_t>(r));
    entry.set("messages_sent", c.messages_sent);
    entry.set("bytes_sent", c.bytes_sent);
    entry.set("messages_received", c.messages_received);
    entry.set("bytes_received", c.bytes_received);
    entry.set("collective_messages_sent", c.collective_messages_sent);
    entry.set("collective_bytes_sent", c.collective_bytes_sent);
    // Reliability-overhead split, present only on chaos runs (keeps
    // fault-free artifacts byte-identical to the checked-in baselines).
    if (result.chaos_enabled) {
      entry.set("chaos_messages_sent", c.chaos_messages_sent);
      entry.set("chaos_bytes_sent", c.chaos_bytes_sent);
      entry.set("chaos_acks_sent", c.chaos_acks_sent);
    }
    // Per-rank local/cut classification, present only on cetric runs.
    if (r < result.per_rank_cetric.size()) {
      const CetricRankCounters& cet = result.per_rank_cetric[r];
      entry.set("cetric_local_triangles", cet.local_triangles);
      entry.set("cetric_cut_triangles", cet.cut_triangles);
      entry.set("cetric_cut_wedges_sent", cet.cut_wedges_sent);
      entry.set("cetric_cut_wedge_messages_sent", cet.cut_wedge_messages_sent);
      entry.set("cetric_cut_wedge_bytes_sent", cet.cut_wedge_bytes_sent);
      entry.set("cetric_ghost_lists_fetched", cet.ghost_lists_fetched);
      entry.set("cetric_ghost_list_entries", cet.ghost_list_entries);
    }
    entry.set("comm_cpu_seconds", c.comm_cpu_seconds);
    per_rank.push_back(std::move(entry));
  }
  root.set("per_rank", std::move(per_rank));
  return root;
}

void write_run_trace(const RunResult& result, const std::string& path) {
  build_run_trace(result).write_file(path);
}

void write_run_metrics(const RunResult& result, const std::string& path) {
  obs::json::write_file(build_run_metrics(result), path);
}

obs::json::Value build_run_msgtrace(const RunResult& result,
                                    const obs::MsgTrace& trace) {
  using obs::json::Value;
  Value root = trace.to_json();
  root.set("build", obs::build_info_json());

  // Replace the bare run.ranks header with the full run description the
  // analyzer needs to pair measurements with the α–β model.
  Value run = Value::object();
  run.set("ranks", result.ranks);
  run.set("grid_q", result.grid_q);
  if (result.algorithm != "2d") run.set("algorithm", result.algorithm);
  run.set("vertices", static_cast<std::uint64_t>(result.num_vertices));
  run.set("edges", static_cast<std::uint64_t>(result.num_edges));
  run.set("triangles", static_cast<std::uint64_t>(result.triangles));
  run.set("overlap", result.overlap_enabled);
  run.set("chaos", result.chaos_enabled);
  Value model = Value::object();
  model.set("alpha_seconds", result.model.alpha_seconds);
  model.set("beta_seconds_per_byte", result.model.beta_seconds_per_byte);
  run.set("model", std::move(model));
  root.set("run", std::move(run));

  // The modeled step table: what the α–β model predicts per superstep,
  // so analyze_msgtrace can report measured-vs-modeled deltas without a
  // second artifact in hand.
  Value steps = Value::array();
  for (const Superstep& step : supersteps_of(result)) {
    const PhaseBreakdown b = breakdown(step.samples);
    Value entry = Value::object();
    entry.set("name", step.name);
    entry.set("phase", step.phase);
    entry.set("modeled_seconds", b.modeled_seconds(result.model));
    entry.set("modeled_comm_seconds", b.modeled_comm_seconds(result.model));
    entry.set("hidden_seconds", b.hidden_seconds(result.model));
    entry.set("overlapped", b.overlapped);
    steps.push_back(std::move(entry));
  }
  root.set("steps", std::move(steps));
  return root;
}

void write_run_msgtrace(const RunResult& result, const obs::MsgTrace& trace,
                        const std::string& path) {
  obs::json::write_file(build_run_msgtrace(result, trace), path);
}

}  // namespace tricount::core
