#include "tricount/core/driver.hpp"

#include <functional>
#include <stdexcept>

#include "tricount/core/dist_graph.hpp"
#include "tricount/mpisim/runtime.hpp"
#include "tricount/obs/telemetry.hpp"

namespace tricount::core {

namespace {

using SliceFactory = std::function<LocalSlice(mpisim::Comm&)>;

RunResult run_pipeline(int ranks, const RunOptions& options,
                       const SliceFactory& make_slice) {
  if (mpisim::perfect_square_root(ranks) == 0) {
    throw std::invalid_argument(
        "count_triangles_2d: rank count must be a perfect square");
  }
  RunResult result;
  result.ranks = ranks;
  result.grid_q = mpisim::perfect_square_root(ranks);
  result.model = options.model;
  result.per_rank.assign(static_cast<std::size_t>(ranks), RankStats{});

  mpisim::WorldOptions world_options;
  world_options.fault_injector = options.chaos.get();
  world_options.watchdog_seconds = options.watchdog_seconds;
  result.chaos_enabled = options.chaos != nullptr;
  result.overlap_enabled = options.config.overlap;

  mpisim::WorldReport report = mpisim::run_world_report(ranks, [&](mpisim::Comm& comm) {
    mpisim::Cart2D grid(comm);

    // Live telemetry phase tag: "pre" until cannon_count flips it to "tc"
    // at its first superstep.
    obs::RankTelemetry* live = nullptr;
    if (obs::Telemetry* telemetry = obs::Telemetry::current()) {
      live = telemetry->for_caller();
    }
    if (live != nullptr) {
      live->phase.store("pre", std::memory_order_relaxed);
    }

    const LocalSlice input = make_slice(comm);

    PreprocessOutput pre = preprocess(grid, input, options.config);
    if (options.validate_blocks) {
      pre.blocks.ublock.validate();
      pre.blocks.lblock.validate();
      pre.blocks.tasks.validate();
    }
    CountOutput count = cannon_count(grid, std::move(pre.blocks),
                                     options.config);
    if (live != nullptr) {
      live->phase.store("done", std::memory_order_relaxed);
    }

    RankStats& stats = result.per_rank[static_cast<std::size_t>(comm.rank())];
    stats.pre_steps = std::move(pre.steps);
    stats.shifts = std::move(count.shifts);
    stats.kernel = count.kernel;
    if (comm.rank() == 0) {
      result.triangles = count.total_triangles;
      result.num_vertices = pre.num_vertices;
      result.num_edges = pre.num_edges;
    }
  }, world_options);

  result.per_rank_counters = std::move(report.counters);
  result.comm_matrix = std::move(report.comm_matrix);
  result.per_rank_chaos = std::move(report.chaos);

  for (const auto& [name, sample] : result.per_rank[0].pre_steps) {
    result.step_names.push_back(name);
  }
  return result;
}

}  // namespace

std::vector<PhaseSample> RunResult::step_samples(std::size_t step_index) const {
  std::vector<PhaseSample> samples;
  samples.reserve(per_rank.size());
  for (const RankStats& stats : per_rank) {
    samples.push_back(stats.pre_steps.at(step_index).second);
  }
  return samples;
}

std::vector<PhaseSample> RunResult::shift_samples(std::size_t shift_index) const {
  std::vector<PhaseSample> samples;
  samples.reserve(per_rank.size());
  for (const RankStats& stats : per_rank) {
    samples.push_back(stats.shifts.at(shift_index));
  }
  return samples;
}

std::size_t RunResult::num_shifts() const {
  return per_rank.empty() ? 0 : per_rank[0].shifts.size();
}

double RunResult::pre_modeled_seconds() const {
  double total = 0.0;
  for (std::size_t s = 0; s < step_names.size(); ++s) {
    total += breakdown(step_samples(s)).modeled_seconds(model);
  }
  return total;
}

double RunResult::tc_modeled_seconds() const {
  double total = 0.0;
  for (std::size_t s = 0; s < num_shifts(); ++s) {
    total += breakdown(shift_samples(s)).modeled_seconds(model);
  }
  return total;
}

double RunResult::pre_modeled_comm_seconds() const {
  double total = 0.0;
  for (std::size_t s = 0; s < step_names.size(); ++s) {
    total += breakdown(step_samples(s)).modeled_comm_seconds(model);
  }
  return total;
}

double RunResult::tc_modeled_comm_seconds() const {
  double total = 0.0;
  for (std::size_t s = 0; s < num_shifts(); ++s) {
    total += breakdown(shift_samples(s)).modeled_comm_seconds(model);
  }
  return total;
}

std::uint64_t RunResult::pre_ops() const {
  std::uint64_t total = 0;
  for (const RankStats& stats : per_rank) total += stats.pre_total().ops;
  return total;
}

std::uint64_t RunResult::tc_ops() const {
  std::uint64_t total = 0;
  for (const RankStats& stats : per_rank) total += stats.tc_total().ops;
  return total;
}

mpisim::ChaosCounters RunResult::total_chaos() const {
  mpisim::ChaosCounters total;
  for (const mpisim::ChaosCounters& c : per_rank_chaos) total += c;
  return total;
}

CetricRankCounters RunResult::total_cetric() const {
  CetricRankCounters total;
  for (const CetricRankCounters& c : per_rank_cetric) {
    total.local_triangles += c.local_triangles;
    total.cut_triangles += c.cut_triangles;
    total.cut_wedges_sent += c.cut_wedges_sent;
    total.cut_wedge_messages_sent += c.cut_wedge_messages_sent;
    total.cut_wedge_bytes_sent += c.cut_wedge_bytes_sent;
    total.ghost_lists_fetched += c.ghost_lists_fetched;
    total.ghost_list_entries += c.ghost_list_entries;
  }
  return total;
}

KernelCounters RunResult::total_kernel() const {
  KernelCounters total;
  for (const RankStats& stats : per_rank) total += stats.kernel;
  return total;
}

double RunResult::shift_max_compute(std::size_t shift_index) const {
  return breakdown(shift_samples(shift_index)).max_compute_seconds;
}

double RunResult::shift_avg_compute(std::size_t shift_index) const {
  return breakdown(shift_samples(shift_index)).avg_compute_seconds;
}

RunResult count_triangles_2d(const graph::EdgeList& graph, int ranks,
                             const RunOptions& options) {
  return run_pipeline(ranks, options, [&](mpisim::Comm& comm) {
    return block_slice_from_edges(graph, comm.rank(), comm.size());
  });
}

RunResult count_triangles_2d(const graph::Csr& csr, int ranks,
                             const RunOptions& options) {
  return run_pipeline(ranks, options, [&](mpisim::Comm& comm) {
    return block_slice_from_csr(csr, comm.rank(), comm.size());
  });
}

RunResult count_triangles_2d_rmat(const graph::RmatParams& params, int ranks,
                                  const RunOptions& options) {
  return run_pipeline(ranks, options, [&](mpisim::Comm& comm) {
    return block_slice_from_rmat(comm, params);
  });
}

}  // namespace tricount::core
