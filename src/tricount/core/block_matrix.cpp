#include "tricount/core/block_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace tricount::core {

VertexId cyclic_row_count(VertexId n, int q, int residue) {
  const auto r = static_cast<VertexId>(residue);
  if (n <= r) return 0;
  return (n - 1 - r) / static_cast<VertexId>(q) + 1;
}

BlockCsr BlockCsr::from_entries(VertexId num_local_rows,
                                std::vector<LocalEntry> entries) {
  BlockCsr block;
  block.num_local_rows_ = num_local_rows;
  block.xadj_.assign(static_cast<std::size_t>(num_local_rows) + 1, 0);
  for (const LocalEntry& e : entries) {
    if (e.row >= num_local_rows) {
      throw std::out_of_range("BlockCsr: entry row out of range");
    }
    ++block.xadj_[e.row + 1];
  }
  for (std::size_t i = 1; i < block.xadj_.size(); ++i) {
    block.xadj_[i] += block.xadj_[i - 1];
  }
  block.adj_.resize(entries.size());
  std::vector<std::uint64_t> cursor(block.xadj_.begin(), block.xadj_.end() - 1);
  for (const LocalEntry& e : entries) {
    block.adj_[cursor[e.row]++] = e.col;
  }
  // Sort each row; §5.2 notes the sort cost is amortized over the many
  // intersections that rely on sorted order for the backward early exit.
  std::uint64_t write = 0;
  std::vector<std::uint64_t> new_xadj(block.xadj_.size(), 0);
  for (VertexId r = 0; r < num_local_rows; ++r) {
    const auto begin = block.adj_.begin() + static_cast<std::ptrdiff_t>(block.xadj_[r]);
    const auto end = block.adj_.begin() + static_cast<std::ptrdiff_t>(block.xadj_[r + 1]);
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    // Compact dedup result in place.
    for (auto it = begin; it != unique_end; ++it) {
      block.adj_[write++] = *it;
    }
    new_xadj[r + 1] = write;
  }
  block.adj_.resize(write);
  block.xadj_ = std::move(new_xadj);
  for (VertexId r = 0; r < num_local_rows; ++r) {
    if (block.row_degree(r) > 0) block.nonempty_.push_back(r);
  }
  return block;
}

VertexId BlockCsr::max_row_degree() const {
  VertexId best = 0;
  for (const VertexId r : nonempty_) best = std::max(best, row_degree(r));
  return best;
}

std::vector<std::byte> BlockCsr::to_blob() const {
  util::BlobWriter writer;
  writer.add_scalar<std::uint64_t>(num_local_rows_);
  writer.add_section(xadj_);
  writer.add_section(adj_);
  writer.add_section(nonempty_);
  return writer.take();
}

BlockCsr BlockCsr::from_blob(std::span<const std::byte> blob) {
  util::BlobReader reader(blob);
  BlockCsr block;
  block.num_local_rows_ =
      static_cast<VertexId>(reader.next_scalar<std::uint64_t>());
  const auto xadj = reader.next_section<std::uint64_t>();
  const auto adj = reader.next_section<VertexId>();
  const auto nonempty = reader.next_section<VertexId>();
  block.xadj_.assign(xadj.begin(), xadj.end());
  block.adj_.assign(adj.begin(), adj.end());
  block.nonempty_.assign(nonempty.begin(), nonempty.end());
  return block;
}

void BlockCsr::validate() const {
  if (xadj_.size() != static_cast<std::size_t>(num_local_rows_) + 1 ||
      xadj_.front() != 0 || xadj_.back() != adj_.size()) {
    throw std::runtime_error("BlockCsr: xadj shape invalid");
  }
  std::vector<VertexId> expected_nonempty;
  for (VertexId r = 0; r < num_local_rows_; ++r) {
    if (xadj_[r] > xadj_[r + 1]) {
      throw std::runtime_error("BlockCsr: xadj not monotone");
    }
    const auto cols = row(r);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      if (cols[i - 1] >= cols[i]) {
        throw std::runtime_error("BlockCsr: row not strictly sorted");
      }
    }
    if (!cols.empty()) expected_nonempty.push_back(r);
  }
  if (expected_nonempty != nonempty_) {
    throw std::runtime_error("BlockCsr: nonempty row list inconsistent");
  }
}

}  // namespace tricount::core
