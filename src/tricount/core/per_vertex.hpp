// Distributed per-vertex triangle counting — the natural extension of the
// 2D algorithm that the paper's motivating applications (clustering
// coefficients, transitivity, k-truss support, community detection) need.
//
// The Cannon-pattern kernel is rerun with an accumulating variant: every
// closed triangle (i, j, k) credits all three endpoints. Because the
// kernel works in block-local coordinates, the rank's grid position
// (x, y) and the current shift's column block z recover the global ids:
//   row r    -> j = r*q + x,
//   entry e  -> i = e*q + y,
//   closer t -> k = t*q + z.
// Per-rank accumulators are then reduced to the cyclic owners of the
// *new* (degree-ordered) ids and finally translated back to the caller's
// original vertex ids via the owners of the old ids.
#pragma once

#include <vector>

#include "tricount/core/config.hpp"
#include "tricount/core/driver.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/graph/types.hpp"

namespace tricount::core {

struct PerVertexResult {
  graph::TriangleCount total_triangles = 0;
  /// counts[v] = triangles containing v, in the caller's original ids.
  /// Sums to 3 * total_triangles.
  std::vector<graph::TriangleCount> counts;
  int ranks = 0;

  /// Local clustering coefficient of v given its degree.
  double local_clustering(graph::VertexId v, graph::EdgeIndex degree) const;
};

/// Distributed per-vertex triangle counting on a simulated world of
/// `ranks` ranks (perfect square).
PerVertexResult count_per_vertex_2d(const graph::EdgeList& graph, int ranks,
                                    const RunOptions& options = {});

/// Network-level clustering statistics computed distributedly: global
/// triangle count, wedge count, transitivity, and the average local
/// clustering coefficient.
struct ClusteringStats {
  graph::TriangleCount triangles = 0;
  graph::TriangleCount wedges = 0;
  double transitivity = 0.0;
  double average_local_clustering = 0.0;
};

ClusteringStats clustering_stats_2d(const graph::EdgeList& graph, int ranks,
                                    const RunOptions& options = {});

}  // namespace tricount::core
