// The preprocessing pipeline of paper §5.3:
//   (i)   initial 1D cyclic redistribution (dist_graph.hpp),
//   (ii)  distributed counting sort into non-decreasing degree order and
//         relabeling of every adjacency list,
//   (iii) 2D cyclic scatter of U, L, and the task matrix onto the √p × √p
//         grid (directly into Cannon's aligned starting positions),
//   (iv)  per-block CSR construction with transformed indices, sorted
//         rows, and DCSR non-empty row lists.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tricount/core/block_matrix.hpp"
#include "tricount/core/config.hpp"
#include "tricount/core/dist_graph.hpp"
#include "tricount/core/instrumentation.hpp"
#include "tricount/mpisim/cart2d.hpp"

namespace tricount::core {

/// Cyclic slice after degree relabeling. Indexing is unchanged (local k
/// still corresponds to *old* global id rank + k*p); `new_ids[k]` is the
/// vertex's position in the non-decreasing degree order, and `adj` is
/// already expressed in new ids.
struct RelabeledSlice {
  VertexId num_vertices = 0;
  int rank = 0;
  int p = 1;
  std::vector<VertexId> new_ids;
  std::vector<std::vector<VertexId>> adj;
  EdgeIndex global_max_degree = 0;
};

/// Step (ii): distributed counting sort + all-to-all neighbour relabel.
/// Tie-break within a degree: (owner rank, local index), which is a valid
/// (if different from the serial reference's by-id) stable order.
RelabeledSlice degree_relabel(mpisim::Comm& comm, const CyclicSlice& slice);

/// Identity relabel (new id == old id): the ablation path used when
/// Config::degree_ordering is off. Counts stay exact; the ordering's
/// performance benefits disappear.
RelabeledSlice identity_relabel(mpisim::Comm& comm, const CyclicSlice& slice);

/// The three blocks each rank owns during counting, already in Cannon's
/// aligned start position: U_{x,(x+y)%q}, L_{(x+y)%q,y}, and the task
/// block at (x,y).
struct Blocks {
  BlockCsr ublock;
  BlockCsr lblock;
  BlockCsr tasks;
};

/// Steps (iii)+(iv): scatter entries per the 2D cyclic map and build the
/// block CSRs. The task matrix is built from L for the ⟨j,i,k⟩ scheme and
/// from U for ⟨i,j,k⟩ (§5.1 last paragraph).
Blocks scatter_2d(mpisim::Cart2D& grid, const RelabeledSlice& slice,
                  Enumeration enumeration);

struct PreprocessOutput {
  Blocks blocks;
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;  ///< global undirected edge count
  /// Per-superstep measurements on this rank, in pipeline order.
  std::vector<std::pair<std::string, PhaseSample>> steps;
};

/// Runs the full pipeline on this rank's input slice.
PreprocessOutput preprocess(mpisim::Cart2D& grid, const LocalSlice& input,
                            const Config& config);

}  // namespace tricount::core
