// Algorithm configuration: every optimization from paper §5.2 plus the
// enumeration scheme from §3.1 and the intersection kernel policy is a
// switch, so the §7.3 ablation benchmarks can turn each one off
// independently.
#pragma once

#include <string>

#include "tricount/kernels/kernels.hpp"

namespace tricount::core {

/// Triangle enumeration rule (§3.1). kJIK tasks come from the non-zeros
/// of L and hash the higher-degree endpoint's list (the paper's choice,
/// 72.8% faster); kIJK tasks come from U.
enum class Enumeration { kJIK, kIJK };

struct Config {
  Enumeration enumeration = Enumeration::kJIK;

  /// Which set-intersection kernel the compute phase runs (`--kernel`).
  /// kAuto picks per task pair from row lengths and density; kHash is the
  /// paper's map-based kernel, kMerge its list-based kernel; kGalloping
  /// and kBitmap are the skew/density specialists (docs/kernels.md).
  kernels::KernelPolicy kernel = kernels::KernelPolicy::kAuto;

  /// §3.1: relabel vertices into non-decreasing degree order before
  /// counting. Disabling keeps counts exact (the U/L split then follows
  /// raw vertex ids) but loses the balance and intersection-size benefits
  /// the paper attributes to the ordering — an ablation knob.
  bool degree_ordering = true;

  /// §5.2 "doubly sparse traversal": iterate only non-empty task rows via
  /// the DCSR row list instead of all n/√p local rows.
  bool doubly_sparse = true;

  /// §5.2 "modifying the hashing routine for sparser vertices": try
  /// probe-free direct hashing for short lists.
  bool modified_hashing = true;

  /// §5.2 "eliminating unnecessary intersection operations": traverse the
  /// lookup list backwards and break at the hashed list's minimum.
  bool backward_early_exit = true;

  /// §5.2 "reducing overheads associated with communication": ship each
  /// block as one contiguous blob instead of per-array messages.
  bool blob_comm = true;

  /// Overlap communication with computation (`--overlap`): post the next
  /// superstep's U/L shift (Cannon) or prefetch the next panel (SUMMA)
  /// with isend/irecv before running the current superstep's
  /// intersections, and complete it afterwards. Counts are unchanged; the
  /// α–β model then charges max(compute, network) per overlapped
  /// superstep instead of their sum (docs/overlap.md). Off by default so
  /// checked-in baseline artifacts stay byte-identical.
  bool overlap = false;

  /// Checkpoint the U/L/task blocks and partial count at every counting
  /// superstep, whether or not a crash is scheduled (docs/chaos.md). A
  /// scheduled chaos crash forces checkpointing on the crashing rank; this
  /// knob measures the checkpoint overhead on healthy runs.
  bool checkpoint = false;

  std::string describe() const;
};

const char* to_string(Enumeration e);

}  // namespace tricount::core
