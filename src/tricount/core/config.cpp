#include "tricount/core/config.hpp"

#include <sstream>

namespace tricount::core {

const char* to_string(Enumeration e) {
  return e == Enumeration::kJIK ? "jik" : "ijk";
}

std::string Config::describe() const {
  std::ostringstream os;
  os << "enum=" << to_string(enumeration)
     << " kernel=" << kernels::to_string(kernel)
     << " degree_ordering=" << (degree_ordering ? "on" : "off")
     << " doubly_sparse=" << (doubly_sparse ? "on" : "off")
     << " modified_hashing=" << (modified_hashing ? "on" : "off")
     << " backward_early_exit=" << (backward_early_exit ? "on" : "off")
     << " blob_comm=" << (blob_comm ? "on" : "off")
     << " overlap=" << (overlap ? "on" : "off")
     << " checkpoint=" << (checkpoint ? "on" : "off");
  return os.str();
}

}  // namespace tricount::core
