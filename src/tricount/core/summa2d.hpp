// Rectangular-grid triangle counting via the SUMMA communication pattern —
// the extension the paper's conclusion sketches ("this work can be easily
// extended to deal with rectangular processor grids using the SUMMA
// algorithm").
//
// The grid is qr × qc (p = qr·qc, not necessarily square). The inner (k)
// dimension is split into K = lcm(qr, qc) cyclic panels:
//   U_{x,z}: rows j with j%qr == x, columns k with k%K == z,
//            owned by rank (x, z%qc);
//   L_{z,y}: rows i with i%qc == y, columns k with k%K == z,
//            owned by rank (z%qr, y);
//   tasks (j,i) at rank (j%qr, i%qc), as in the Cannon formulation.
// Step z broadcasts U_{x,z} along grid row x and L_{z,y} along grid
// column y, then every rank runs the same intersection kernel. On a
// square grid this is block-for-block the Cannon distribution, just with
// broadcasts instead of shifts.
#pragma once

#include <memory>
#include <vector>

#include "tricount/core/config.hpp"
#include "tricount/core/instrumentation.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/mpisim/fault.hpp"
#include "tricount/util/cost_model.hpp"

namespace tricount::core {

struct SummaOptions {
  int grid_rows = 2;
  int grid_cols = 2;
  Config config;
  util::AlphaBetaModel model;
  /// Fault injector for the run (chaos subsystem, docs/chaos.md); null
  /// keeps the fault-free fast path.
  std::shared_ptr<const mpisim::FaultInjector> chaos;
  /// Hang-watchdog budget forwarded to mpisim (0 = auto, <0 = off).
  double watchdog_seconds = 0.0;
};

struct SummaResult {
  graph::TriangleCount triangles = 0;
  int ranks = 0;
  int grid_rows = 0;
  int grid_cols = 0;
  int panels = 0;  ///< K = lcm(qr, qc)
  /// Modeled parallel times, same construction as RunResult's.
  double pre_modeled_seconds = 0.0;
  double tc_modeled_seconds = 0.0;
  KernelCounters kernel;  ///< summed over ranks
  /// True when a fault injector was installed for this run.
  bool chaos_enabled = false;
  /// Per-rank chaos tallies (all zero unless chaos_enabled).
  std::vector<mpisim::ChaosCounters> per_rank_chaos;

  mpisim::ChaosCounters total_chaos() const;

  double total_modeled_seconds() const {
    return pre_modeled_seconds + tc_modeled_seconds;
  }
};

/// Counts triangles on a qr × qc simulated grid.
SummaResult count_triangles_summa(const graph::EdgeList& graph,
                                  const SummaOptions& options);

}  // namespace tricount::core
