#include "tricount/core/instrumentation.hpp"

#include <algorithm>

namespace tricount::core {

PhaseSample& PhaseSample::operator+=(const PhaseSample& other) {
  compute_cpu_seconds += other.compute_cpu_seconds;
  messages += other.messages;
  bytes += other.bytes;
  comm_cpu_seconds += other.comm_cpu_seconds;
  ops += other.ops;
  // A phase total counts as overlapped if any constituent superstep was;
  // per-superstep accounting is what the modeled times are built from.
  overlapped = overlapped || other.overlapped;
  return *this;
}

PhaseSample RankStats::pre_total() const {
  PhaseSample total;
  for (const auto& [name, sample] : pre_steps) total += sample;
  return total;
}

PhaseSample RankStats::tc_total() const {
  PhaseSample total;
  for (const PhaseSample& s : shifts) total += s;
  return total;
}

PhaseTracker::PhaseTracker(mpisim::Comm& comm) : comm_(comm) {
  cpu_at_ = util::thread_cpu_seconds();
  counters_at_ = comm.counters();
}

PhaseSample PhaseTracker::cut() {
  const double cpu_now = util::thread_cpu_seconds();
  const mpisim::PerfCounters now = comm_.counters();
  const mpisim::PerfCounters delta = now - counters_at_;
  PhaseSample sample;
  sample.comm_cpu_seconds = delta.comm_cpu_seconds;
  sample.compute_cpu_seconds =
      std::max(0.0, (cpu_now - cpu_at_) - delta.comm_cpu_seconds);
  sample.messages = delta.messages_sent;
  sample.bytes = delta.bytes_sent;
  cpu_at_ = cpu_now;
  counters_at_ = now;
  return sample;
}

double PhaseBreakdown::hidden_seconds(
    const util::AlphaBetaModel& model) const {
  if (!overlapped) return 0.0;
  return std::min(max_compute_seconds, model.cost(max_messages, max_bytes));
}

double PhaseBreakdown::modeled_comm_seconds(
    const util::AlphaBetaModel& model) const {
  return model.cost(max_messages, max_bytes) - hidden_seconds(model) +
         max_comm_cpu_seconds;
}

double PhaseBreakdown::modeled_seconds(
    const util::AlphaBetaModel& model) const {
  return max_compute_seconds + modeled_comm_seconds(model);
}

PhaseBreakdown breakdown(const std::vector<PhaseSample>& per_rank) {
  PhaseBreakdown out;
  if (per_rank.empty()) return out;
  // All ranks of a superstep run the same mode, so all-of is the same as
  // any-of on real data; all-of keeps a stray unmarked sample conservative
  // (the sum, never an optimistic max).
  out.overlapped = true;
  double compute_total = 0.0;
  for (const PhaseSample& s : per_rank) {
    out.overlapped = out.overlapped && s.overlapped;
    out.max_compute_seconds = std::max(out.max_compute_seconds, s.compute_cpu_seconds);
    compute_total += s.compute_cpu_seconds;
    out.max_messages = std::max(out.max_messages, s.messages);
    out.max_bytes = std::max(out.max_bytes, s.bytes);
    out.total_bytes += s.bytes;
    out.max_comm_cpu_seconds = std::max(out.max_comm_cpu_seconds, s.comm_cpu_seconds);
  }
  out.avg_compute_seconds = compute_total / static_cast<double>(per_rank.size());
  return out;
}

}  // namespace tricount::core
