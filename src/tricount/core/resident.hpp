// Resident-partition entry points: the driver's preprocess and counting
// phases split into separately callable halves over a PersistentWorld
// (docs/service.md).
//
// count_triangles_2d pays graph slicing + the full §5.3 preprocessing
// pipeline on every call. A long-lived service amortizes that: run
// preprocess_resident once, keep the per-rank Cannon-aligned blocks in a
// ResidentPartition, then answer each query with count_resident — only
// the √p counting supersteps, on blocks copied from the resident set
// (cannon_count shifts its blocks away, so the originals stay intact for
// the next query).
#pragma once

#include <string>
#include <vector>

#include "tricount/core/driver.hpp"
#include "tricount/core/preprocess.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/mpisim/runtime.hpp"

namespace tricount::core {

/// Everything one preprocessing pass produced, kept alive across queries:
/// the per-rank U/L/task blocks in Cannon's aligned start positions plus
/// the run metadata a served RunResult needs.
struct ResidentPartition {
  int ranks = 0;
  int grid_q = 0;
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;
  /// The config the partition was built with. The enumeration scheme is
  /// baked into the task matrix (built from L for ⟨j,i,k⟩, from U for
  /// ⟨i,j,k⟩), so count_resident always counts under this enumeration;
  /// kernel-phase knobs may vary per query.
  Config config;
  util::AlphaBetaModel model;
  /// blocks[r] = rank r's aligned blocks; copied per counting sweep.
  std::vector<Blocks> blocks;
  /// Preprocessing measurements, kept for diagnostics ("how expensive was
  /// the setup this partition amortizes").
  std::vector<std::string> step_names;
  std::vector<RankStats> pre_stats;

  /// Approximate resident footprint of all ranks' blocks.
  std::uint64_t resident_bytes() const;
};

/// Runs the §5.3 preprocessing pipeline once on `world` (a perfect-square
/// persistent world) and returns the resident partition. The graph must
/// be simplified.
ResidentPartition preprocess_resident(mpisim::PersistentWorld& world,
                                      const graph::EdgeList& graph,
                                      const RunOptions& options = {});

/// Runs only the counting supersteps on the resident partition and
/// assembles a RunResult (empty preprocessing phase; traffic counters are
/// this job's delta). `config`'s kernel-phase knobs (kernel, overlap,
/// §5.2 switches) are honored; its enumeration is overridden by the
/// partition's. `world` must be the world `partition` was built on.
RunResult count_resident(mpisim::PersistentWorld& world,
                         const ResidentPartition& partition, Config config);

}  // namespace tricount::core
