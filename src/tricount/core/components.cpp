#include "tricount/core/components.hpp"

#include <algorithm>
#include <map>

#include "tricount/core/dist_graph.hpp"
#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/runtime.hpp"

namespace tricount::core {

using graph::VertexId;

DistComponents connected_components_dist(const graph::EdgeList& graph,
                                         int ranks) {
  DistComponents result;
  result.ranks = ranks;
  result.label.assign(graph.num_vertices, graph::kInvalidVertex);
  if (graph.num_vertices == 0) {
    mpisim::run_world(ranks, [](mpisim::Comm&) {});
    return result;
  }

  std::vector<int> rounds_by_rank(static_cast<std::size_t>(ranks), 0);

  mpisim::run_world(ranks, [&](mpisim::Comm& comm) {
    const int p = comm.size();
    const LocalSlice slice =
        block_slice_from_edges(graph, comm.rank(), p);
    const VertexId n = slice.num_vertices;

    std::vector<VertexId> label(slice.owned());
    std::vector<bool> changed(slice.owned(), true);
    for (VertexId k = 0; k < slice.owned(); ++k) {
      label[k] = slice.begin + k;
    }

    int rounds = 0;
    while (true) {
      // Push the labels of changed vertices to their neighbours' owners.
      std::vector<std::vector<VertexId>> outgoing(static_cast<std::size_t>(p));
      for (VertexId k = 0; k < slice.owned(); ++k) {
        if (!changed[k]) continue;
        changed[k] = false;
        for (const VertexId u : slice.adj[k]) {
          auto& bucket =
              outgoing[static_cast<std::size_t>(block_owner(u, n, p))];
          bucket.push_back(u);
          bucket.push_back(label[k]);
        }
      }
      const auto incoming = mpisim::alltoallv(comm, outgoing);
      std::uint64_t updates = 0;
      for (const auto& bucket : incoming) {
        for (std::size_t at = 0; at + 1 < bucket.size(); at += 2) {
          const VertexId u = bucket[at];
          const VertexId candidate = bucket[at + 1];
          const VertexId local = u - slice.begin;
          if (candidate < label[local]) {
            label[local] = candidate;
            changed[local] = true;
            ++updates;
          }
        }
      }
      ++rounds;
      if (mpisim::allreduce_sum(comm, updates) == 0) break;
    }

    rounds_by_rank[static_cast<std::size_t>(comm.rank())] = rounds;
    // Disjoint slots; the thread join publishes the writes.
    for (VertexId k = 0; k < slice.owned(); ++k) {
      result.label[slice.begin + k] = label[k];
    }
  });

  result.rounds = *std::max_element(rounds_by_rank.begin(),
                                    rounds_by_rank.end());
  std::map<VertexId, VertexId> sizes;
  for (const VertexId l : result.label) ++sizes[l];
  result.num_components = static_cast<VertexId>(sizes.size());
  for (const auto& [l, size] : sizes) {
    result.largest_component = std::max(result.largest_component, size);
  }
  return result;
}

}  // namespace tricount::core
