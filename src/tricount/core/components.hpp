// Distributed connected components by label propagation — a substrate
// analytic used to characterize datasets (size of the giant component)
// and a second consumer of the mpisim runtime beyond triangle counting.
//
// 1D block decomposition; every round, each vertex whose label shrank
// pushes the new label to its neighbours' owners (all-to-all), and the
// minimum wins. Converges in O(component diameter) rounds.
#pragma once

#include <vector>

#include "tricount/graph/edge_list.hpp"
#include "tricount/graph/types.hpp"

namespace tricount::core {

struct DistComponents {
  /// label[v] = smallest vertex id in v's component.
  std::vector<graph::VertexId> label;
  graph::VertexId num_components = 0;
  graph::VertexId largest_component = 0;
  int rounds = 0;  ///< propagation rounds until convergence
  int ranks = 0;
};

/// Runs distributed label propagation on a simulated world of `ranks`
/// ranks (any positive count; the decomposition is 1D).
DistComponents connected_components_dist(const graph::EdgeList& graph,
                                         int ranks);

}  // namespace tricount::core
