#include "tricount/core/dist_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace tricount::core {

EdgeIndex LocalSlice::owned_edges() const {
  EdgeIndex count = 0;
  for (VertexId k = 0; k < owned(); ++k) {
    const VertexId v = begin + k;
    for (const VertexId u : adj[k]) {
      if (v < u) ++count;
    }
  }
  return count;
}

std::pair<VertexId, VertexId> block_range(VertexId n, int rank, int p) {
  const VertexId chunk = n / static_cast<VertexId>(p);
  const VertexId rem = n % static_cast<VertexId>(p);
  const auto r = static_cast<VertexId>(rank);
  const VertexId begin = r * chunk + std::min(r, rem);
  const VertexId end = begin + chunk + (r < rem ? 1 : 0);
  return {begin, end};
}

int block_owner(VertexId v, VertexId n, int p) {
  // Inverse of block_range: first `rem` blocks have chunk+1 vertices.
  const VertexId chunk = n / static_cast<VertexId>(p);
  const VertexId rem = n % static_cast<VertexId>(p);
  if (chunk == 0) return static_cast<int>(v);
  const VertexId big_span = rem * (chunk + 1);
  if (v < big_span) return static_cast<int>(v / (chunk + 1));
  return static_cast<int>(rem + (v - big_span) / chunk);
}

LocalSlice block_slice_from_edges(const graph::EdgeList& graph, int rank,
                                  int p) {
  LocalSlice slice;
  slice.num_vertices = graph.num_vertices;
  std::tie(slice.begin, slice.end) = block_range(graph.num_vertices, rank, p);
  slice.adj.assign(slice.owned(), {});
  for (const graph::Edge& e : graph.edges) {
    if (e.u >= slice.begin && e.u < slice.end) {
      slice.adj[e.u - slice.begin].push_back(e.v);
    }
    if (e.v >= slice.begin && e.v < slice.end) {
      slice.adj[e.v - slice.begin].push_back(e.u);
    }
  }
  for (auto& list : slice.adj) std::sort(list.begin(), list.end());
  return slice;
}

LocalSlice block_slice_from_csr(const graph::Csr& csr, int rank, int p) {
  LocalSlice slice;
  slice.num_vertices = csr.num_vertices();
  std::tie(slice.begin, slice.end) = block_range(csr.num_vertices(), rank, p);
  slice.adj.reserve(slice.owned());
  for (VertexId v = slice.begin; v < slice.end; ++v) {
    const auto nbrs = csr.neighbors(v);
    slice.adj.emplace_back(nbrs.begin(), nbrs.end());
  }
  return slice;
}

LocalSlice block_slice_from_rmat(mpisim::Comm& comm,
                                 const graph::RmatParams& params) {
  const int p = comm.size();
  const VertexId n = params.num_vertices();
  const EdgeIndex slots = params.num_edge_slots();
  const EdgeIndex begin =
      slots * static_cast<EdgeIndex>(comm.rank()) / static_cast<EdgeIndex>(p);
  const EdgeIndex end = slots * static_cast<EdgeIndex>(comm.rank() + 1) /
                        static_cast<EdgeIndex>(p);
  const std::vector<graph::Edge> generated =
      graph::rmat_edge_slice(params, begin, end);

  // Route each endpoint's (vertex, neighbour) record to the block owner.
  std::vector<std::vector<VertexId>> outgoing(static_cast<std::size_t>(p));
  for (const graph::Edge& e : generated) {
    if (e.u == e.v) continue;  // self-loops never make it into the graph
    const auto to_u = static_cast<std::size_t>(block_owner(e.u, n, p));
    const auto to_v = static_cast<std::size_t>(block_owner(e.v, n, p));
    outgoing[to_u].push_back(e.u);
    outgoing[to_u].push_back(e.v);
    outgoing[to_v].push_back(e.v);
    outgoing[to_v].push_back(e.u);
  }
  const auto incoming = mpisim::alltoallv(comm, outgoing);

  LocalSlice slice;
  slice.num_vertices = n;
  std::tie(slice.begin, slice.end) = block_range(n, comm.rank(), p);
  slice.adj.assign(slice.owned(), {});
  for (const auto& bucket : incoming) {
    if (bucket.size() % 2 != 0) {
      throw std::runtime_error("rmat routing: odd record stream");
    }
    for (std::size_t i = 0; i < bucket.size(); i += 2) {
      const VertexId v = bucket[i];
      const VertexId u = bucket[i + 1];
      slice.adj[v - slice.begin].push_back(u);
    }
  }
  // Generation is a multigraph stream; deduplicate per list. Both
  // endpoints' owners see the identical multiset for an edge, so the
  // deduplicated graph is globally consistent.
  for (auto& list : slice.adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return slice;
}

CyclicSlice cyclic_redistribute(mpisim::Comm& comm, const LocalSlice& input) {
  const int p = comm.size();
  // Record format per vertex: [global id, degree, neighbours...].
  std::vector<std::vector<VertexId>> outgoing(static_cast<std::size_t>(p));
  for (VertexId k = 0; k < input.owned(); ++k) {
    const VertexId v = input.begin + k;
    auto& bucket = outgoing[v % static_cast<VertexId>(p)];
    bucket.push_back(v);
    bucket.push_back(static_cast<VertexId>(input.adj[k].size()));
    bucket.insert(bucket.end(), input.adj[k].begin(), input.adj[k].end());
  }
  const auto incoming = mpisim::alltoallv(comm, outgoing);

  CyclicSlice slice;
  slice.num_vertices = input.num_vertices;
  slice.rank = comm.rank();
  slice.p = p;
  slice.adj.assign(
      cyclic_row_count(input.num_vertices, p, comm.rank()), {});
  for (const auto& bucket : incoming) {
    std::size_t at = 0;
    while (at < bucket.size()) {
      const VertexId v = bucket[at++];
      const VertexId deg = bucket[at++];
      if (v % static_cast<VertexId>(p) != static_cast<VertexId>(comm.rank())) {
        throw std::runtime_error("cyclic redistribute: misrouted vertex");
      }
      auto& list = slice.adj[v / static_cast<VertexId>(p)];
      list.assign(bucket.begin() + static_cast<std::ptrdiff_t>(at),
                  bucket.begin() + static_cast<std::ptrdiff_t>(at + deg));
      at += deg;
    }
  }
  return slice;
}

}  // namespace tricount::core
