#include "tricount/core/resident.hpp"

#include <stdexcept>
#include <utility>

#include "tricount/core/dist_graph.hpp"
#include "tricount/mpisim/cart2d.hpp"
#include "tricount/obs/telemetry.hpp"

namespace tricount::core {

namespace {

std::uint64_t block_bytes(const BlockCsr& block) {
  return block.xadj().size() * sizeof(std::uint64_t) +
         block.adj().size() * sizeof(VertexId) +
         block.nonempty().size() * sizeof(VertexId);
}

obs::RankTelemetry* live_slot() {
  obs::Telemetry* telemetry = obs::Telemetry::current();
  return telemetry != nullptr ? telemetry->for_caller() : nullptr;
}

}  // namespace

std::uint64_t ResidentPartition::resident_bytes() const {
  std::uint64_t total = 0;
  for (const Blocks& b : blocks) {
    total += block_bytes(b.ublock) + block_bytes(b.lblock) +
             block_bytes(b.tasks);
  }
  return total;
}

ResidentPartition preprocess_resident(mpisim::PersistentWorld& world,
                                      const graph::EdgeList& graph,
                                      const RunOptions& options) {
  const int ranks = world.size();
  if (mpisim::perfect_square_root(ranks) == 0) {
    throw std::invalid_argument(
        "preprocess_resident: rank count must be a perfect square");
  }
  ResidentPartition partition;
  partition.ranks = ranks;
  partition.grid_q = mpisim::perfect_square_root(ranks);
  partition.config = options.config;
  partition.model = options.model;
  partition.blocks.resize(static_cast<std::size_t>(ranks));
  partition.pre_stats.assign(static_cast<std::size_t>(ranks), RankStats{});

  world.run_job([&](mpisim::Comm& comm) {
    mpisim::Cart2D grid(comm);
    obs::RankTelemetry* live = live_slot();
    if (live != nullptr) live->phase.store("pre", std::memory_order_relaxed);

    const LocalSlice input =
        block_slice_from_edges(graph, comm.rank(), comm.size());
    PreprocessOutput pre = preprocess(grid, input, options.config);
    if (options.validate_blocks) {
      pre.blocks.ublock.validate();
      pre.blocks.lblock.validate();
      pre.blocks.tasks.validate();
    }
    const auto rank = static_cast<std::size_t>(comm.rank());
    partition.blocks[rank] = std::move(pre.blocks);
    partition.pre_stats[rank].pre_steps = std::move(pre.steps);
    if (comm.rank() == 0) {
      partition.num_vertices = pre.num_vertices;
      partition.num_edges = pre.num_edges;
    }
    if (live != nullptr) {
      live->partition_bytes.store(block_bytes(partition.blocks[rank].ublock) +
                                      block_bytes(partition.blocks[rank].lblock) +
                                      block_bytes(partition.blocks[rank].tasks),
                                  std::memory_order_relaxed);
      live->phase.store("resident", std::memory_order_relaxed);
    }
  });

  for (const auto& [name, sample] : partition.pre_stats[0].pre_steps) {
    partition.step_names.push_back(name);
  }
  return partition;
}

RunResult count_resident(mpisim::PersistentWorld& world,
                         const ResidentPartition& partition, Config config) {
  if (world.size() != partition.ranks) {
    throw std::invalid_argument(
        "count_resident: world size does not match the resident partition");
  }
  if (partition.blocks.empty()) {
    throw std::invalid_argument("count_resident: empty partition");
  }
  // The task matrix encodes the enumeration scheme it was built for;
  // counting must interpret it the same way.
  config.enumeration = partition.config.enumeration;

  RunResult result;
  result.ranks = partition.ranks;
  result.grid_q = partition.grid_q;
  result.num_vertices = partition.num_vertices;
  result.num_edges = partition.num_edges;
  result.model = partition.model;
  result.overlap_enabled = config.overlap;
  result.per_rank.assign(static_cast<std::size_t>(partition.ranks),
                         RankStats{});

  mpisim::WorldReport report = world.run_job([&](mpisim::Comm& comm) {
    mpisim::Cart2D grid(comm);
    obs::RankTelemetry* live = live_slot();
    // Copy: cannon_count shifts the blocks away; the resident set must
    // survive for the next query.
    Blocks blocks = partition.blocks[static_cast<std::size_t>(comm.rank())];
    CountOutput count = cannon_count(grid, std::move(blocks), config);

    RankStats& stats = result.per_rank[static_cast<std::size_t>(comm.rank())];
    stats.shifts = std::move(count.shifts);
    stats.kernel = count.kernel;
    if (comm.rank() == 0) result.triangles = count.total_triangles;
    if (live != nullptr) {
      live->phase.store("resident", std::memory_order_relaxed);
    }
  });

  result.per_rank_counters = std::move(report.counters);
  result.comm_matrix = std::move(report.comm_matrix);
  result.per_rank_chaos = std::move(report.chaos);
  return result;
}

}  // namespace tricount::core
