// Distributed graph input handling (paper §5.3 "initial redistribution").
//
// The algorithm assumes the graph arrives in a 1D block distribution: each
// rank owns n/p consecutive vertices and their full adjacency lists
// (LocalSlice). The first preprocessing step converts this to a 1D
// *cyclic* distribution (owner(v) = v mod p, local index v ÷ p), which
// breaks up localized clumps of dense vertices (CyclicSlice).
//
// Two input paths are provided:
//  * block_slice_from_edges: carve a rank's block out of a replicated edge
//    list (tests and file-based examples);
//  * block_slice_from_rmat: distributed generation — each rank generates a
//    disjoint slice of the RMAT edge-slot stream and routes endpoints to
//    their block owners, matching the paper's in-memory dataset creation.
#pragma once

#include <vector>

#include "tricount/core/block_matrix.hpp"
#include "tricount/graph/csr.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/graph/generators.hpp"
#include "tricount/mpisim/collectives.hpp"
#include "tricount/mpisim/comm.hpp"

namespace tricount::core {

using graph::EdgeIndex;

/// 1D block distribution: this rank owns vertices [begin, end).
struct LocalSlice {
  VertexId num_vertices = 0;
  VertexId begin = 0;
  VertexId end = 0;
  /// adj[v - begin] = sorted, deduplicated full adjacency of v (no
  /// self-loops).
  std::vector<std::vector<VertexId>> adj;

  VertexId owned() const { return end - begin; }
  /// Number of undirected edges whose lower endpoint lives here.
  EdgeIndex owned_edges() const;
};

/// Balanced block range of rank r among p: sizes differ by at most one.
std::pair<VertexId, VertexId> block_range(VertexId n, int rank, int p);
int block_owner(VertexId v, VertexId n, int p);

/// Builds this rank's block slice from a replicated, simplified edge list.
/// No communication. O(m) per rank — prefer the CSR overload when many
/// ranks slice the same graph.
LocalSlice block_slice_from_edges(const graph::EdgeList& graph, int rank,
                                  int p);

/// Same, from a prebuilt symmetric CSR: O(owned adjacency) per rank, so a
/// p-rank world slices the whole graph in O(m) total.
LocalSlice block_slice_from_csr(const graph::Csr& csr, int rank, int p);

/// Distributed RMAT ingestion: generate slice, route endpoints to block
/// owners (all-to-all), sort and deduplicate locally.
LocalSlice block_slice_from_rmat(mpisim::Comm& comm,
                                 const graph::RmatParams& params);

/// 1D cyclic distribution: owner(v) = v % p.
struct CyclicSlice {
  VertexId num_vertices = 0;
  int rank = 0;
  int p = 1;
  /// adj[k] = adjacency of global vertex rank + k*p.
  std::vector<std::vector<VertexId>> adj;

  VertexId owned() const { return static_cast<VertexId>(adj.size()); }
  VertexId global_id(VertexId local) const {
    return static_cast<VertexId>(rank) + local * static_cast<VertexId>(p);
  }
};

/// Step (i) of preprocessing: block -> cyclic redistribution.
CyclicSlice cyclic_redistribute(mpisim::Comm& comm, const LocalSlice& input);

}  // namespace tricount::core
