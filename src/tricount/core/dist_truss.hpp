// Distributed k-truss support counting on top of the 2D triangle
// machinery — the application the paper's introduction names first.
//
// Truss decomposition splits into (a) per-edge triangle-support counting
// — the computation the paper's algorithm parallelizes — and (b) a cheap
// support-peeling pass. This module distributes (a) exactly like the 2D
// counter: every triangle closed during the Cannon shifts credits its
// three edges; credits are reduced to per-edge owners in new-id space,
// translated back to the caller's original ids, and aligned with the
// simplified edge order. Peeling then reuses the serial bucket-queue
// (graph/ktruss), so `ktruss_2d` returns a decomposition bit-identical to
// the serial one.
#pragma once

#include <vector>

#include "tricount/core/driver.hpp"
#include "tricount/graph/edge_list.hpp"
#include "tricount/graph/ktruss.hpp"

namespace tricount::core {

/// Distributed per-edge triangle support. Result is aligned with the
/// simplified input's edge order (as graph::edge_supports).
std::vector<graph::TriangleCount> edge_supports_2d(
    const graph::EdgeList& simplified, int ranks,
    const RunOptions& options = {});

/// Full truss decomposition with distributed support counting.
graph::KtrussResult ktruss_2d(const graph::EdgeList& simplified, int ranks,
                              const RunOptions& options = {});

}  // namespace tricount::core
